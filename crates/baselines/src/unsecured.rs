//! Unsecured reference configurations from the paper's figures.
//!
//! * [`UnsecuredLsm`] — plain LevelDB with no enclave at all: the "LevelDB
//!   (Unsecure)" line of Figure 5a.
//! * code-in-enclave / buffer-outside / **no authentication** — the
//!   "Buffer outside enclave (unsecured)" ideal line of Figures 2 and 6a —
//!   obtained with [`UnsecuredOptions::ideal_outside_enclave`].

use std::sync::Arc;

use lsm_store::{Db, EnvConfig, Options, Record, StorageEnv, TableOptions};
use sgx_sim::Platform;
use sim_disk::{FsError, Placement, SimDisk, SimFs};

/// Configuration of an unsecured LSM store.
#[derive(Debug, Clone)]
pub struct UnsecuredOptions {
    /// Run the code inside the enclave (charges ECalls/OCalls) or fully
    /// outside.
    pub in_enclave: bool,
    /// Read SSTables through mmap.
    pub use_mmap: bool,
    /// Block cache capacity (untrusted memory).
    pub block_cache_bytes: usize,
    /// Memtable size triggering flushes.
    pub write_buffer_bytes: usize,
    /// Level-1 budget.
    pub level1_max_bytes: u64,
    /// Level growth factor.
    pub level_multiplier: u64,
    /// Number of on-disk levels.
    pub max_levels: usize,
    /// Target file size.
    pub target_file_bytes: u64,
    /// Automatic compaction.
    pub compaction_enabled: bool,
    /// Key-value separation into a (plain, unauthenticated) value log —
    /// the apples-to-apples baseline for the separated eLSM
    /// configuration (`None` disables).
    pub vlog: Option<lsm_store::VlogConfig>,
}

impl Default for UnsecuredOptions {
    fn default() -> Self {
        UnsecuredOptions {
            in_enclave: false,
            use_mmap: true,
            block_cache_bytes: 512 * 1024,
            write_buffer_bytes: 64 * 1024,
            level1_max_bytes: 256 * 1024,
            level_multiplier: 10,
            max_levels: 7,
            target_file_bytes: 128 * 1024,
            compaction_enabled: true,
            vlog: None,
        }
    }
}

impl UnsecuredOptions {
    /// The Figure 2 / 6a "ideal" line: enclave code, untrusted buffer, no
    /// data authentication.
    pub fn ideal_outside_enclave() -> Self {
        UnsecuredOptions { in_enclave: true, ..Self::default() }
    }
}

/// A vanilla LSM store with no authentication at all.
///
/// # Examples
///
/// ```
/// use elsm_baselines::{UnsecuredLsm, UnsecuredOptions};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), sim_disk::FsError> {
/// let store = UnsecuredLsm::open(Platform::with_defaults(), UnsecuredOptions::default())?;
/// store.put(b"k", b"v")?;
/// assert_eq!(&store.get(b"k")?.unwrap().value[..], b"v");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct UnsecuredLsm {
    platform: Arc<Platform>,
    db: Arc<Db>,
}

impl UnsecuredLsm {
    /// Opens a fresh unsecured store.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn open(platform: Arc<Platform>, options: UnsecuredOptions) -> Result<Self, FsError> {
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        Self::open_with(platform, fs, options)
    }

    /// Opens on an existing filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn open_with(
        platform: Arc<Platform>,
        fs: Arc<SimFs>,
        options: UnsecuredOptions,
    ) -> Result<Self, FsError> {
        let env = StorageEnv::new(
            platform.clone(),
            fs,
            EnvConfig {
                in_enclave: options.in_enclave,
                use_mmap: options.use_mmap,
                cache_placement: Placement::Untrusted,
                block_cache_bytes: if options.use_mmap { 0 } else { options.block_cache_bytes },
                block_slot_bytes: 8 * 1024,
                sealed_files: false,
            },
            None,
        );
        let db_options = Options {
            env: env.config().clone(),
            table: TableOptions::default(),
            write_buffer_bytes: options.write_buffer_bytes,
            target_file_bytes: options.target_file_bytes,
            level1_max_bytes: options.level1_max_bytes,
            level_multiplier: options.level_multiplier,
            max_levels: options.max_levels,
            compaction_enabled: options.compaction_enabled,
            purge_tombstones_at_bottom: true,
            keep_old_versions: true,
            vlog: options.vlog,
            ..Options::default()
        };
        let db = Arc::new(Db::open(env, db_options, None)?);
        Ok(UnsecuredLsm { platform, db })
    }

    /// The platform costs are charged against.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The wrapped store.
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// Writes a record.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64, FsError> {
        self.db.put(key, value)
    }

    /// Writes a whole batch through the store's group-commit pipeline
    /// (same surface as the authenticated stores, so write-batching
    /// comparisons stay fair).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<u64>, FsError> {
        let mut batch = lsm_store::WriteBatch::with_capacity(items.len());
        for (key, value) in items {
            batch.put(bytes::Bytes::copy_from_slice(key), bytes::Bytes::copy_from_slice(value));
        }
        self.db.write_batch(batch)
    }

    /// Reads a record.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>, FsError> {
        self.db.get(key)
    }

    /// Deletes a key.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn delete(&self, key: &[u8]) -> Result<u64, FsError> {
        self.db.delete(key)
    }

    /// Range query.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        self.db.scan(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_no_enclave_traffic() {
        let s = UnsecuredLsm::open(Platform::with_defaults(), UnsecuredOptions::default()).unwrap();
        for i in 0..300 {
            s.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        s.db().flush().unwrap();
        for i in (0..300).step_by(17) {
            assert!(s.get(format!("k{i:04}").as_bytes()).unwrap().is_some());
        }
        let stats = s.platform().stats();
        assert_eq!(stats.ecalls + stats.ocalls, 0, "no enclave = no switches");
        assert_eq!(stats.epc_page_ins, 0);
    }

    #[test]
    fn ideal_outside_config_switches_but_does_not_page() {
        let s = UnsecuredLsm::open(
            Platform::with_defaults(),
            UnsecuredOptions { use_mmap: false, ..UnsecuredOptions::ideal_outside_enclave() },
        )
        .unwrap();
        for i in 0..300 {
            s.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        s.db().flush().unwrap();
        for i in 0..300 {
            s.get(format!("k{i:04}").as_bytes()).unwrap();
        }
        let stats = s.platform().stats();
        assert!(stats.ocalls > 0, "enclave code exits for file IO");
        // The read buffer lives outside: only the memtable region (small)
        // may page, so faults stay tiny.
        assert!(stats.epc_page_ins < 200, "buffer outside must not thrash: {}", stats.epc_page_ins);
    }

    #[test]
    fn unsecured_is_faster_than_everything_else_shape() {
        // Sanity for the figures: unsecured < ideal-outside in total cost.
        let run = |options: UnsecuredOptions| {
            let s = UnsecuredLsm::open(Platform::with_defaults(), options).unwrap();
            for i in 0..200 {
                s.put(format!("k{i:04}").as_bytes(), &[0u8; 64]).unwrap();
            }
            s.db().flush().unwrap();
            let t0 = s.platform().clock().now_ns();
            for i in 0..200 {
                s.get(format!("k{i:04}").as_bytes()).unwrap();
            }
            s.platform().clock().now_ns() - t0
        };
        let plain = run(UnsecuredOptions::default());
        let ideal = run(UnsecuredOptions::ideal_outside_enclave());
        assert!(plain <= ideal, "no-enclave must be at least as fast: {plain} vs {ideal}");
    }
}
