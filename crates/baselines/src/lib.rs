//! # elsm-baselines
//!
//! The comparison systems from the eLSM paper's evaluation:
//!
//! * [`EleosStore`] — the Eleos baseline (§6.1): in-enclave update-in-place
//!   sorted array with user-space software paging and a 1 GB cap,
//! * [`UnsecuredLsm`] — vanilla LevelDB with no enclave ("LevelDB
//!   (Unsecure)" in Figure 5a) and the code-in-enclave/buffer-outside
//!   unsecured "ideal" of Figures 2 and 6a,
//! * [`MbtStore`] — the conventional update-in-place Merkle B-tree ADS the
//!   paper's §3.4 argues against,
//! * [`ShardedUnsecured`] — N unsecured LSM partitions behind the same
//!   partitioner as `elsm_shard::ShardedKv`: the roofline for the
//!   shard-scaling figure,
//! * [`ReplicatedUnsecured`] — an unsecured primary with N unsecured
//!   read replicas: the roofline for the replica-scaling figure.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eleos;
pub mod mbt_store;
pub mod replicated;
pub mod sharded;
pub mod unsecured;

pub use eleos::{EleosCapacityExceeded, EleosOptions, EleosStore};
pub use mbt_store::MbtStore;
pub use replicated::ReplicatedUnsecured;
pub use sharded::ShardedUnsecured;
pub use unsecured::{UnsecuredLsm, UnsecuredOptions};
