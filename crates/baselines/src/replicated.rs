//! The unsecured replicated counterpart of `elsm_replica::ReplicationGroup`.
//!
//! One primary plus N replica copies of the vanilla LSM store, each on
//! its own platform, with **no** enclaves, no channel authentication, no
//! announcements and no fencing: writes apply to the primary and replay
//! on every replica as plain puts; reads round-robin across the
//! replicas. This is the honest roofline for the replica-scaling figure —
//! it isolates what replicated read fan-out itself buys from what
//! per-replica verification costs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lsm_store::Record;
use sgx_sim::Platform;
use sim_disk::FsError;

use crate::unsecured::{UnsecuredLsm, UnsecuredOptions};

/// An unsecured primary with N unsecured read replicas.
///
/// # Examples
///
/// ```
/// use elsm_baselines::{ReplicatedUnsecured, UnsecuredOptions};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), sim_disk::FsError> {
/// let group = ReplicatedUnsecured::open(Platform::with_defaults(), 2, UnsecuredOptions::default())?;
/// group.put(b"k", b"v")?;
/// assert!(group.get(b"k")?.is_some()); // served by a replica
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReplicatedUnsecured {
    primary: UnsecuredLsm,
    replicas: Vec<UnsecuredLsm>,
    rr: AtomicUsize,
}

impl ReplicatedUnsecured {
    /// Opens a primary on `platform` and `replicas` replicas, each on its
    /// own platform with the same cost model.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn open(
        platform: Arc<Platform>,
        replicas: usize,
        options: UnsecuredOptions,
    ) -> Result<Self, FsError> {
        let primary = UnsecuredLsm::open(platform.clone(), options.clone())?;
        let replicas = (0..replicas)
            .map(|_| UnsecuredLsm::open(Platform::new(platform.cost().clone()), options.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplicatedUnsecured { primary, replicas, rr: AtomicUsize::new(0) })
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The primary store.
    pub fn primary(&self) -> &UnsecuredLsm {
        &self.primary
    }

    /// Replica `i`'s store.
    pub fn replica(&self, i: usize) -> &UnsecuredLsm {
        &self.replicas[i]
    }

    /// Replica `i`'s platform (its machine's clock).
    pub fn replica_platform(&self, i: usize) -> &Arc<Platform> {
        self.replicas[i].platform()
    }

    /// The primary's platform.
    pub fn primary_platform(&self) -> &Arc<Platform> {
        self.primary.platform()
    }

    fn read_node(&self) -> &UnsecuredLsm {
        if self.replicas.is_empty() {
            return &self.primary;
        }
        &self.replicas[self.rr.fetch_add(1, Ordering::Relaxed) % self.replicas.len()]
    }

    /// Writes to the primary and replays on every replica (the unsecured
    /// stand-in for WAL shipping).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64, FsError> {
        let ts = self.primary.put(key, value)?;
        for replica in &self.replicas {
            replica.put(key, value)?;
        }
        Ok(ts)
    }

    /// Batch write, replayed on every replica.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<u64>, FsError> {
        let ts = self.primary.put_batch(items)?;
        for replica in &self.replicas {
            replica.put_batch(items)?;
        }
        Ok(ts)
    }

    /// Deletes on the primary and every replica.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn delete(&self, key: &[u8]) -> Result<u64, FsError> {
        let ts = self.primary.delete(key)?;
        for replica in &self.replicas {
            replica.delete(key)?;
        }
        Ok(ts)
    }

    /// Point read served by the next replica round-robin.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>, FsError> {
        self.read_node().get(key)
    }

    /// Range read served by the next replica round-robin.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        self.read_node().scan(from, to)
    }

    /// Flushes every node.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn flush(&self) -> Result<(), FsError> {
        self.primary.db().flush()?;
        for replica in &self.replicas {
            replica.db().flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_serve_reads_round_robin() {
        let group =
            ReplicatedUnsecured::open(Platform::with_defaults(), 2, UnsecuredOptions::default())
                .unwrap();
        for i in 0..100u32 {
            group.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        group.flush().unwrap();
        let before: Vec<u64> = (0..2).map(|i| group.replica_platform(i).clock().now_ns()).collect();
        for i in 0..50u32 {
            assert!(group.get(format!("k{i:03}").as_bytes()).unwrap().is_some());
        }
        for (i, &t0) in before.iter().enumerate() {
            assert!(group.replica_platform(i).clock().now_ns() > t0, "replica {i} served no reads");
        }
        assert_eq!(group.scan(b"k000", b"k999").unwrap().len(), 100);
    }
}
