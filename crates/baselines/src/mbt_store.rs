//! Update-in-place authenticated store: the conventional ADS baseline
//! (§3.4).
//!
//! A Merkle B-tree whose node digests live "on disk": every update rewrites
//! the digests along the root path, each a random-access disk write. This
//! is the design the paper's intro claims eLSM beats "by more than one
//! order of magnitude" on write-intensive workloads; the
//! `ablation_update_in_place` bench reproduces that comparison.

use std::sync::Arc;

use merkle::{MerkleBTree, UpdateStats};
use parking_lot::Mutex;
use sgx_sim::Platform;

/// Approximate on-disk size of one B-tree node (keys + hashes).
const NODE_BYTES: usize = 4096;

/// An authenticated dictionary with disk-resident update-in-place digests.
///
/// # Examples
///
/// ```
/// use elsm_baselines::MbtStore;
/// use sgx_sim::Platform;
///
/// let store = MbtStore::new(Platform::with_defaults());
/// store.put(b"k".to_vec(), b"v".to_vec());
/// assert_eq!(store.get(b"k"), Some(b"v".to_vec()));
/// ```
#[derive(Debug)]
pub struct MbtStore {
    platform: Arc<Platform>,
    tree: Mutex<MerkleBTree>,
    node_cache_nodes: usize,
}

impl MbtStore {
    /// Creates an empty store with a small node cache.
    pub fn new(platform: Arc<Platform>) -> Self {
        Self::with_cache(platform, 8)
    }

    /// Creates a store caching roughly `cached_nodes` hot nodes in memory.
    pub fn with_cache(platform: Arc<Platform>, cached_nodes: usize) -> Self {
        MbtStore { platform, tree: Mutex::new(MerkleBTree::new()), node_cache_nodes: cached_nodes }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.tree.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current root digest (what a verifier would pin).
    pub fn root(&self) -> elsm_crypto::Digest {
        self.tree.lock().root()
    }

    fn charge_update(&self, stats: UpdateStats) {
        // Each rewritten node: one random disk write of the node, plus
        // recomputing its digest.
        for _ in 0..stats.nodes_rewritten {
            self.platform.charge_disk_seek();
            self.platform.charge_disk_transfer(NODE_BYTES);
            self.platform.charge_hash(NODE_BYTES / 8);
        }
    }

    fn charge_read(&self, depth: usize) {
        // Nodes beyond the small hot cache come from disk.
        let cold = depth.saturating_sub(self.node_cache_nodes.min(depth));
        for _ in 0..cold.max(1) {
            self.platform.charge_disk_seek();
            self.platform.charge_disk_transfer(NODE_BYTES);
        }
    }

    /// Inserts or updates a key, charging the update-in-place IO.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        let mut tree = self.tree.lock();
        let stats = tree.insert(key, value);
        drop(tree);
        self.charge_update(stats);
    }

    /// Inserts a whole batch (same surface as the LSM stores' batch APIs).
    ///
    /// An update-in-place Merkle B-tree rewrites and re-hashes the
    /// root-to-leaf path for *every* record — there is no commit group to
    /// amortize, which is the §3.4 motivation for the LSM design. The loop
    /// here is the honest model of that.
    pub fn put_batch(&self, items: &[(&[u8], &[u8])]) {
        for (key, value) in items {
            self.put(key.to_vec(), value.to_vec());
        }
    }

    /// Looks up a key, charging path reads.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let tree = self.tree.lock();
        let depth = tree.depth();
        let out = tree.get(key);
        drop(tree);
        self.charge_read(depth);
        out
    }

    /// Range query.
    pub fn range(&self, from: &[u8], to: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let tree = self.tree.lock();
        let depth = tree.depth();
        let out = tree.range(from, to);
        drop(tree);
        self.charge_read(depth + out.len() / 8);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let s = MbtStore::new(Platform::with_defaults());
        for i in 0..300 {
            s.put(format!("k{i:04}").into_bytes(), format!("v{i}").into_bytes());
        }
        for i in (0..300).step_by(13) {
            assert_eq!(s.get(format!("k{i:04}").as_bytes()), Some(format!("v{i}").into_bytes()));
        }
    }

    #[test]
    fn writes_cost_random_io() {
        let p = Platform::with_defaults();
        let s = MbtStore::new(p.clone());
        for i in 0..500 {
            s.put(format!("k{i:05}").into_bytes(), b"v".to_vec());
        }
        let stats = p.stats();
        assert!(
            stats.disk_seeks as usize > 500,
            "update-in-place digests must seek more than once per write: {}",
            stats.disk_seeks
        );
    }

    #[test]
    fn root_changes_with_updates() {
        let s = MbtStore::new(Platform::with_defaults());
        s.put(b"a".to_vec(), b"1".to_vec());
        let r1 = s.root();
        s.put(b"a".to_vec(), b"2".to_vec());
        assert_ne!(s.root(), r1);
    }

    #[test]
    fn write_cost_exceeds_lsm_append() {
        // The motivating comparison of §3.4: per-write disk seeks for the
        // update-in-place ADS vs. sequential appends for the LSM.
        let p_mbt = Platform::with_defaults();
        let mbt = MbtStore::new(p_mbt.clone());
        for i in 0..300 {
            mbt.put(format!("k{i:05}").into_bytes(), vec![0u8; 64]);
        }

        let p_lsm = Platform::with_defaults();
        let lsm = crate::unsecured::UnsecuredLsm::open(
            p_lsm.clone(),
            crate::unsecured::UnsecuredOptions::default(),
        )
        .unwrap();
        for i in 0..300 {
            lsm.put(format!("k{i:05}").as_bytes(), &[0u8; 64]).unwrap();
        }
        assert!(
            p_mbt.clock().now_ns() > 5 * p_lsm.clock().now_ns(),
            "update-in-place should be much slower: {} vs {}",
            p_mbt.clock().now_ns(),
            p_lsm.clock().now_ns()
        );
    }
}
