//! The Eleos baseline (§6.1): an in-enclave, update-in-place sorted array
//! with user-space virtual memory.
//!
//! Eleos (Orenbach et al., EuroSys'17) avoids *hardware* EPC paging by
//! monitoring memory references in user space and relocating data between
//! enclave and untrusted memory itself. The paper's baseline stores the
//! whole dataset as a sorted array in (Eleos-managed) enclave memory with
//! 30 % slack for insertions, persists through a write buffer, and scales
//! only to 1 GB.
//!
//! This module reproduces all four properties: a real gapped sorted array,
//! software paging (per-reference monitoring cost + explicit relocation
//! copies instead of hardware faults), write-buffer persistence via
//! OCalls, and a hard capacity limit.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use sgx_sim::Platform;
use sim_disk::{SimFile, SimFs};

/// Configuration of the Eleos-style store.
#[derive(Debug, Clone)]
pub struct EleosOptions {
    /// Hard dataset limit (the open-source Eleos scales to 1 GB; the
    /// harness passes the scaled equivalent).
    pub capacity_limit_bytes: u64,
    /// Bytes of array data Eleos keeps materialized in enclave memory
    /// (its secure-page cache; analogous to the EPC share it manages).
    pub resident_bytes: usize,
    /// Software page size of the user-space paging layer.
    pub page_bytes: usize,
    /// Per-memory-reference monitoring overhead in nanoseconds (SUVM
    /// instrumentations).
    pub monitor_ns: u64,
    /// Write buffer persisted to disk when full.
    pub persist_buffer_bytes: usize,
    /// Fraction of slack slots left in the array (the paper uses 30 %).
    pub slack_percent: u32,
}

impl Default for EleosOptions {
    fn default() -> Self {
        EleosOptions {
            capacity_limit_bytes: 1 << 30,
            resident_bytes: 96 * 1024,
            page_bytes: 4096,
            monitor_ns: 150,
            persist_buffer_bytes: 16 * 1024,
            slack_percent: 30,
        }
    }
}

/// Error: the store refuses data beyond its scalability limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EleosCapacityExceeded {
    /// Bytes the store would need to hold.
    pub needed: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for EleosCapacityExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eleos capacity exceeded: need {} bytes, limit {}", self.needed, self.limit)
    }
}

impl std::error::Error for EleosCapacityExceeded {}

/// Array slot: occupied or a gap.
type Slot = Option<(Vec<u8>, Vec<u8>)>;

struct EleosInner {
    slots: Vec<Slot>,
    live: usize,
    data_bytes: u64,
    /// Software page table: page index → resident (CLOCK-ish via tick).
    resident: HashMap<usize, u64>,
    tick: u64,
    persist_pending: usize,
}

/// The Eleos-style in-enclave key-value store.
///
/// # Examples
///
/// ```
/// use elsm_baselines::{EleosOptions, EleosStore};
/// use sgx_sim::Platform;
/// use sim_disk::{SimDisk, SimFs};
///
/// let platform = Platform::with_defaults();
/// let fs = SimFs::new(SimDisk::new(platform.clone()));
/// let store = EleosStore::new(platform, fs, EleosOptions::default());
/// store.put(b"k".to_vec(), b"v".to_vec()).unwrap();
/// assert_eq!(store.get(b"k").as_deref(), Some(b"v".as_slice()));
/// ```
pub struct EleosStore {
    platform: Arc<Platform>,
    options: EleosOptions,
    inner: Mutex<EleosInner>,
    log: Arc<SimFile>,
}

impl fmt::Debug for EleosStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EleosStore(live={})", self.inner.lock().live)
    }
}

impl EleosStore {
    /// Creates an empty store persisting into `fs`.
    pub fn new(platform: Arc<Platform>, fs: Arc<SimFs>, options: EleosOptions) -> Self {
        let log = fs
            .create("eleos.log")
            .unwrap_or_else(|_| fs.open("eleos.log").expect("eleos log exists if create failed"));
        EleosStore {
            platform,
            options,
            inner: Mutex::new(EleosInner {
                slots: Vec::new(),
                live: 0,
                data_bytes: 0,
                resident: HashMap::new(),
                tick: 0,
                persist_pending: 0,
            }),
            log,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.inner.lock().live
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live data bytes.
    pub fn data_bytes(&self) -> u64 {
        self.inner.lock().data_bytes
    }

    /// Charges one array-slot access through the software paging layer.
    fn touch_slot(&self, inner: &mut EleosInner, idx: usize, entry_bytes: usize) {
        // Every reference pays the monitoring overhead.
        self.platform.advance(self.options.monitor_ns);
        let page = idx * entry_bytes.max(1) / self.options.page_bytes.max(1);
        inner.tick += 1;
        let tick = inner.tick;
        let max_pages = (self.options.resident_bytes / self.options.page_bytes).max(1);
        if let std::collections::hash_map::Entry::Occupied(mut e) = inner.resident.entry(page) {
            e.insert(tick);
            self.platform.dram_access(64);
            return;
        }
        // Software page-in: relocate a page from untrusted to enclave
        // memory (an explicit copy — cheaper than a hardware fault, but
        // real work).
        if inner.resident.len() >= max_pages {
            // Evict the oldest page (write it back to untrusted memory).
            if let Some((&victim, _)) = inner.resident.iter().min_by_key(|(_, &t)| t) {
                inner.resident.remove(&victim);
                self.platform.cross_copy(self.options.page_bytes);
            }
        }
        inner.resident.insert(page, tick);
        self.platform.cross_copy(self.options.page_bytes);
    }

    fn avg_entry_bytes(inner: &EleosInner) -> usize {
        (inner.data_bytes as usize).checked_div(inner.live).map_or(64, |avg| avg.max(16))
    }

    /// Inserts or updates a record in place.
    ///
    /// # Errors
    ///
    /// Returns [`EleosCapacityExceeded`] past the scalability limit.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), EleosCapacityExceeded> {
        let mut inner = self.inner.lock();
        let added = (key.len() + value.len() + 16) as u64;
        if inner.data_bytes + added > self.options.capacity_limit_bytes {
            return Err(EleosCapacityExceeded {
                needed: inner.data_bytes + added,
                limit: self.options.capacity_limit_bytes,
            });
        }
        let entry_bytes = Self::avg_entry_bytes(&inner);
        // Binary search over slots (gaps probe to the next occupied slot).
        let pos = self.search(&mut inner, &key, entry_bytes);
        match pos {
            Ok(idx) => {
                // In-place update.
                self.touch_slot(&mut inner, idx, entry_bytes);
                let old_len = inner.slots[idx].as_ref().expect("occupied").1.len() as u64;
                inner.data_bytes = inner.data_bytes + value.len() as u64 - old_len;
                inner.slots[idx].as_mut().expect("occupied").1 = value;
            }
            Err(idx) => {
                // Shift right until a gap absorbs the insertion.
                let mut shift_end = idx;
                while shift_end < inner.slots.len() && inner.slots[shift_end].is_some() {
                    shift_end += 1;
                }
                if shift_end == inner.slots.len() {
                    inner.slots.push(None);
                }
                // Move [idx, shift_end) one slot right; charge each touch.
                let mut j = shift_end;
                while j > idx {
                    self.touch_slot(&mut inner, j, entry_bytes);
                    inner.slots.swap(j, j - 1);
                    j -= 1;
                }
                self.touch_slot(&mut inner, idx, entry_bytes);
                inner.slots[idx] = Some((key.clone(), value));
                inner.live += 1;
                inner.data_bytes += added;
                // Maintain slack: periodically re-gap the array.
                let gap_every = (100 / self.options.slack_percent.max(1)) as usize;
                if inner.live % 64 == 0 {
                    self.regap(&mut inner, gap_every, entry_bytes);
                }
            }
        }
        // Persistence write buffer.
        inner.persist_pending += added as usize;
        if inner.persist_pending >= self.options.persist_buffer_bytes {
            let flush = inner.persist_pending;
            inner.persist_pending = 0;
            drop(inner);
            // OCall out and append sequentially to the log.
            self.platform.ocall(|| self.log.append(&vec![0u8; flush]));
        }
        Ok(())
    }

    /// Inserts a whole batch (same surface as the LSM stores' batch APIs).
    ///
    /// Eleos updates in place, so there is no WAL frame or commit group to
    /// amortize: each record pays its own array insertion and software
    /// paging, and the shared persistence write buffer batches the disk
    /// exits exactly as it does for singleton puts. Keeping the method
    /// honest this way is the comparison fig10 draws.
    ///
    /// # Errors
    ///
    /// Returns [`EleosCapacityExceeded`] past the scalability limit; prior
    /// records of the batch stay applied (no atomicity — the paper's
    /// baseline has none).
    pub fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<(), EleosCapacityExceeded> {
        for (key, value) in items {
            self.put(key.to_vec(), value.to_vec())?;
        }
        Ok(())
    }

    /// Re-inserts gaps every `gap_every` slots (amortized maintenance).
    fn regap(&self, inner: &mut EleosInner, gap_every: usize, entry_bytes: usize) {
        let mut slots = Vec::with_capacity(inner.slots.len() + inner.live / gap_every.max(1));
        for (i, slot) in inner.slots.drain(..).enumerate() {
            if let Some(s) = slot {
                if i % gap_every.max(2) == 0 {
                    slots.push(None);
                }
                slots.push(Some(s));
            }
        }
        // The rewrite touches everything once (sequential, enclave-side).
        self.platform.advance(self.options.monitor_ns * slots.len() as u64 / 8);
        let _ = entry_bytes;
        inner.slots = slots;
    }

    /// Binary search over the gapped array; `Ok(idx)` when found,
    /// `Err(idx)` with the insertion slot otherwise.
    fn search(
        &self,
        inner: &mut EleosInner,
        key: &[u8],
        entry_bytes: usize,
    ) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, inner.slots.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Probe outward from mid to the nearest occupied slot.
            let mut probe = mid;
            let mut found = None;
            while probe < hi {
                self.touch_slot(inner, probe, entry_bytes);
                if inner.slots[probe].is_some() {
                    found = Some(probe);
                    break;
                }
                probe += 1;
            }
            let Some(occ) = found else {
                hi = mid;
                continue;
            };
            let cmp = inner.slots[occ].as_ref().expect("occupied").0.as_slice().cmp(key);
            match cmp {
                std::cmp::Ordering::Equal => return Ok(occ),
                std::cmp::Ordering::Less => lo = occ + 1,
                std::cmp::Ordering::Greater => hi = mid.min(occ),
            }
        }
        Err(lo)
    }

    /// Looks up a key (binary search with software paging charges).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let entry_bytes = Self::avg_entry_bytes(&inner);
        match self.search(&mut inner, key, entry_bytes) {
            Ok(idx) => inner.slots[idx].as_ref().map(|(_, v)| v.clone()),
            Err(_) => None,
        }
    }

    /// All records with keys in `[from, to]`.
    pub fn range(&self, from: &[u8], to: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut inner = self.inner.lock();
        let entry_bytes = Self::avg_entry_bytes(&inner);
        let start = match self.search(&mut inner, from, entry_bytes) {
            Ok(i) | Err(i) => i,
        };
        let mut out = Vec::new();
        for i in start..inner.slots.len() {
            self.touch_slot(&mut inner, i, entry_bytes);
            if let Some((k, v)) = inner.slots[i].clone() {
                if k.as_slice() > to {
                    break;
                }
                if k.as_slice() >= from {
                    out.push((k, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::SimDisk;

    fn store(limit: u64) -> EleosStore {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        EleosStore::new(
            platform,
            fs,
            EleosOptions { capacity_limit_bytes: limit, ..EleosOptions::default() },
        )
    }

    #[test]
    fn put_get_round_trip() {
        let s = store(1 << 30);
        for i in (0..500).rev() {
            s.put(format!("key{i:05}").into_bytes(), format!("v{i}").into_bytes()).unwrap();
        }
        assert_eq!(s.len(), 500);
        for i in 0..500 {
            assert_eq!(
                s.get(format!("key{i:05}").as_bytes()),
                Some(format!("v{i}").into_bytes()),
                "key{i:05}"
            );
        }
        assert!(s.get(b"absent").is_none());
    }

    #[test]
    fn updates_are_in_place() {
        let s = store(1 << 30);
        s.put(b"k".to_vec(), b"v1".to_vec()).unwrap();
        s.put(b"k".to_vec(), b"v2".to_vec()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn capacity_limit_enforced() {
        let s = store(2_000);
        let mut hit_limit = false;
        for i in 0..100 {
            if s.put(format!("key{i}").into_bytes(), vec![0u8; 100]).is_err() {
                hit_limit = true;
                break;
            }
        }
        assert!(hit_limit, "1 GB-style cap must reject further inserts");
    }

    #[test]
    fn range_returns_sorted_inclusive() {
        let s = store(1 << 30);
        for k in ["b", "d", "a", "c", "e"] {
            s.put(k.into(), format!("v{k}").into_bytes()).unwrap();
        }
        let got = s.range(b"b", b"d");
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"b".as_slice(), b"c".as_slice(), b"d".as_slice()]);
    }

    #[test]
    fn large_working_set_costs_more_than_small() {
        // With a resident budget of 16 pages, a 100-record store fits but a
        // 5000-record store thrashes the software pager.
        let mk = |n: usize| {
            let platform = Platform::with_defaults();
            let fs = SimFs::new(SimDisk::new(platform.clone()));
            let s = EleosStore::new(
                platform.clone(),
                fs,
                EleosOptions { resident_bytes: 16 * 4096, ..EleosOptions::default() },
            );
            for i in 0..n {
                s.put(format!("key{i:06}").into_bytes(), vec![0u8; 64]).unwrap();
            }
            let t0 = platform.clock().now_ns();
            let mut x = 1469598103934665603u64;
            for _ in 0..200 {
                x = x.wrapping_mul(1099511628211).wrapping_add(7);
                let k = format!("key{:06}", x as usize % n);
                s.get(k.as_bytes());
            }
            platform.clock().now_ns() - t0
        };
        let small = mk(100);
        let large = mk(5000);
        assert!(
            large > small * 2,
            "software paging must slow large working sets: {small} vs {large}"
        );
    }

    #[test]
    fn persistence_writes_to_log() {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let s = EleosStore::new(
            platform.clone(),
            fs.clone(),
            EleosOptions { persist_buffer_bytes: 512, ..EleosOptions::default() },
        );
        for i in 0..100 {
            s.put(format!("key{i}").into_bytes(), vec![0u8; 32]).unwrap();
        }
        let log = fs.open("eleos.log").unwrap();
        assert!(!log.is_empty(), "write buffer must flush to disk");
        assert!(platform.stats().ocalls > 0, "persistence exits the enclave");
    }
}
