//! Trace-tree analysis: critical paths, world-split partitions, folded
//! stacks.
//!
//! Works over the flat [`SpanRecord`] list the tracer ring holds. The key
//! invariant this module leans on: a span's `charges` cover everything its
//! thread charged while the span was open, and `enclosed_by` names the
//! span physically enclosing it on the same thread. So a span's
//! **exclusive** charges are its own minus the sum of spans it enclosed —
//! and summing exclusive charges over *all* spans equals the sum over
//! top-level (`enclosed_by == 0`) spans, which is exactly what the
//! platform clock advanced while traced code ran. That is the
//! partition-sum identity the integration tests pin against
//! [`sgx_sim::Platform::time_split`](sgx_sim::Platform).

use std::collections::BTreeMap;

use sgx_sim::{ThreadCharges, TimeSplit};

use super::SpanRecord;

/// One reassembled trace tree.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The tree's id (equal to the root span's id).
    pub trace_id: u64,
    /// Every span of the trace present in the ring, ordered by span id.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// The root span (`parent_span == 0`). Panics only if constructed
    /// outside [`build_trees`], which guarantees exactly one root.
    pub fn root(&self) -> &SpanRecord {
        self.spans.iter().find(|s| s.is_root()).expect("build_trees guarantees a root")
    }

    /// Causal children of `span_id`, in span-id order.
    pub fn children_of(&self, span_id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent_span == span_id).collect()
    }

    /// Whether every parent edge goes to an older (smaller) span id —
    /// true for tracer-minted ids, so any walk terminates.
    pub fn is_acyclic(&self) -> bool {
        self.spans.iter().all(|s| s.is_root() || s.parent_span < s.span_id)
    }

    /// Charges exclusive to `span`: its own minus everything it
    /// physically enclosed (saturating, per field).
    pub fn exclusive(&self, span: &SpanRecord) -> ThreadCharges {
        let enclosed = self
            .spans
            .iter()
            .filter(|c| c.enclosed_by == span.span_id)
            .fold(ThreadCharges::default(), |acc, c| acc.plus(&c.charges));
        span.charges.since(&enclosed)
    }

    /// The tree's enclave/host/boundary partition: summed exclusive
    /// charges of every span, as a [`TimeSplit`].
    pub fn partition(&self) -> TimeSplit {
        self.spans
            .iter()
            .fold(ThreadCharges::default(), |acc, s| acc.plus(&self.exclusive(s)))
            .split()
    }

    /// The critical path: from the root, repeatedly descend into the
    /// causal child with the largest total charge (ties to the oldest
    /// span). Always non-empty — it contains at least the root.
    pub fn critical_path(&self) -> Vec<&SpanRecord> {
        let mut path = vec![self.root()];
        loop {
            let current = path[path.len() - 1];
            let next = self
                .children_of(current.span_id)
                .into_iter()
                .max_by(|a, b| a.charges.ns.cmp(&b.charges.ns).then(b.span_id.cmp(&a.span_id)));
            match next {
                Some(c) => path.push(c),
                None => return path,
            }
        }
    }

    /// Folded-stack lines (`root;child;grandchild exclusive_ns`), one per
    /// span, flamegraph-compatible: semicolon-joined names down the
    /// causal path, weighted by the span's exclusive virtual time.
    pub fn folded_stacks(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let mut stack: Vec<(u64, String)> = vec![(self.root().span_id, self.root().name.clone())];
        self.fold_into(&mut out, &mut stack);
        out
    }

    fn fold_into(&self, out: &mut Vec<(String, u64)>, stack: &mut Vec<(u64, String)>) {
        let (span_id, path) = stack.last().cloned().expect("fold stack never empty");
        let span = self
            .spans
            .iter()
            .find(|s| s.span_id == span_id)
            .expect("fold visits only spans in the tree");
        out.push((path.clone(), self.exclusive(span).ns));
        for child in self.children_of(span_id) {
            stack.push((child.span_id, format!("{path};{}", child.name)));
            self.fold_into(out, stack);
            stack.pop();
        }
    }
}

/// Groups span records into trace trees. Only traces whose root span is
/// present are returned (a ring wrap can orphan a tree's tail); trees
/// come back in trace-id order, spans within a tree in span-id order.
pub fn build_trees(records: &[SpanRecord]) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for r in records {
        by_trace.entry(r.trace_id).or_default().push(r.clone());
    }
    by_trace
        .into_iter()
        .filter(|(_, spans)| spans.iter().any(|s| s.is_root()))
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| s.span_id);
            TraceTree { trace_id, spans }
        })
        .collect()
}

/// The run-level partition: summed charges of all top-level spans
/// (`enclosed_by == 0`), i.e. everything any traced thread charged while
/// inside traced code. For a run whose every platform charge happens
/// under some traced op, this equals the platform's
/// [`TimeSplit`](sgx_sim::TimeSplit) advance exactly.
pub fn run_partition(records: &[SpanRecord]) -> TimeSplit {
    records
        .iter()
        .filter(|r| r.enclosed_by == 0)
        .fold(ThreadCharges::default(), |acc, r| acc.plus(&r.charges))
        .split()
}

/// Renders a folded-stack report over every tree (flamegraph input:
/// `stack value` per line).
pub fn render_folded(trees: &[TraceTree]) -> String {
    let mut out = String::new();
    for tree in trees {
        for (stack, ns) in tree.folded_stacks() {
            out.push_str(&format!("{stack} {ns}\n"));
        }
    }
    out
}

/// Renders one tree's critical path, one span per line with its
/// exclusive world split.
pub fn render_critical_path(tree: &TraceTree) -> String {
    let mut out = String::new();
    for (depth, span) in tree.critical_path().iter().enumerate() {
        let ex = tree.exclusive(span);
        out.push_str(&format!(
            "{:indent$}{} total={}ns exclusive={}ns (enclave={} host={} boundary={}){}{}\n",
            "",
            span.name,
            span.charges.ns,
            ex.ns,
            ex.enclave_ns,
            ex.host_ns,
            ex.boundary_ns,
            if span.remote { " [remote]" } else { "" },
            if span.links.is_empty() {
                String::new()
            } else {
                format!(" links={}", span.links.len())
            },
            indent = depth * 2,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::TraceContext;
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, enclosed: u64, name: &str, ns: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            enclosed_by: enclosed,
            name: name.to_string(),
            op_class: "op",
            remote: false,
            charges: ThreadCharges { ns, enclave_ns: ns, ..Default::default() },
            links: Vec::new(),
        }
    }

    #[test]
    fn trees_group_and_exclude_orphans() {
        let records = vec![
            span(1, 1, 0, 0, "root", 10),
            span(1, 2, 1, 1, "child", 4),
            span(9, 10, 9, 9, "orphan-child", 3), // root 9 fell off the ring
        ];
        let trees = build_trees(&records);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].trace_id, 1);
        assert!(trees[0].is_acyclic());
    }

    #[test]
    fn exclusive_subtracts_enclosed_children() {
        let records = vec![span(1, 1, 0, 0, "root", 10), span(1, 2, 1, 1, "child", 4)];
        let trees = build_trees(&records);
        let tree = &trees[0];
        assert_eq!(tree.exclusive(tree.root()).ns, 6);
        let part = tree.partition();
        assert_eq!(part.enclave_ns, 10, "exclusive sums reproduce the root's window");
        assert_eq!(run_partition(&records).enclave_ns, 10);
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let records = vec![
            span(1, 1, 0, 0, "root", 10),
            span(1, 2, 1, 1, "light", 2),
            span(1, 3, 1, 1, "heavy", 7),
            span(1, 4, 3, 3, "leaf", 5),
        ];
        let trees = build_trees(&records);
        let path: Vec<&str> = trees[0].critical_path().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(path, vec!["root", "heavy", "leaf"]);
        let rendered = render_critical_path(&trees[0]);
        assert!(rendered.contains("root"));
        assert!(rendered.contains("  heavy"));
    }

    #[test]
    fn folded_stacks_weight_by_exclusive_time() {
        let records = vec![span(1, 1, 0, 0, "root", 10), span(1, 2, 1, 1, "child", 4)];
        let trees = build_trees(&records);
        let folded = render_folded(&trees);
        assert!(folded.contains("root 6\n"));
        assert!(folded.contains("root;child 4\n"));
    }

    #[test]
    fn remote_spans_do_not_double_count() {
        // A replica replay span joins the tree causally but was not
        // enclosed by the primary-side root; run_partition counts both.
        let mut replay = span(1, 5, 1, 0, "replay.frame", 3);
        replay.remote = true;
        replay.links.push(TraceContext { trace_id: 1, span_id: 1 });
        let records = vec![span(1, 1, 0, 0, "root", 10), replay];
        assert_eq!(run_partition(&records).enclave_ns, 13);
        let trees = build_trees(&records);
        assert_eq!(trees[0].partition().enclave_ns, 13);
    }
}
