//! Causal request tracing: trace trees across group-commit, shards and
//! replicas.
//!
//! A [`TraceContext`] names one request tree (`trace_id`) and one position
//! inside it (`span_id`). Ids come from a single atomic sequence on the
//! owning registry — deterministic under a deterministic schedule, and
//! entirely free of wall-clock input, so tracing never perturbs the
//! simulation's virtual time.
//!
//! Propagation has two flavours:
//!
//! * **Thread-local nesting.** [`Telemetry::trace_op`](crate::Telemetry::trace_op)
//!   opens a span that becomes a child of whatever span is already active
//!   on the calling thread (a shard store's `op.put` nests under the
//!   router's `router.op.put` for free, because the router calls into the
//!   shard on its own thread).
//! * **Explicit causal edges.** When work crosses a thread, queue or wire
//!   boundary, the producer captures [`current_context`] (16 bytes,
//!   [`TraceContext::encode`]) and the consumer opens a *remote* child
//!   with [`Telemetry::trace_child_of`](crate::Telemetry::trace_child_of).
//!   Replica replay spans join the primary's tree this way. A batched
//!   boundary that serves *many* requests (one group commit for N
//!   followers) instead records **span links**: each follower's span
//!   links to the one shared commit span via [`link_current`].
//!
//! Every finished span records the calling thread's platform-charge delta
//! ([`sgx_sim::thread_charges`]), so a span's time is already split into
//! enclave / host / boundary worlds. `parent_span` is the *causal* parent;
//! `enclosed_by` is the span that physically enclosed this one on the same
//! thread (zero when none) — the latter is what makes exclusive-time
//! partitions sum exactly to the platform clock (see [`analyze`]).
//!
//! Storage is bounded: a fixed ring of finished spans (drops counted), a
//! per-op-class power-of-two histogram with max-duration exemplar trace
//! ids per bucket, and a bounded slow-op sampler (top-K by duration plus
//! a deterministic reservoir of the rest).

pub mod analyze;

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sgx_sim::ThreadCharges;

use crate::metrics::{bucket_bound, bucket_index, HISTOGRAM_BUCKETS};

/// Capacity of the finished-span ring. Older spans are dropped (and
/// counted) so week-long runs cannot grow registry memory without bound.
pub const TRACE_RING_CAPACITY: usize = 8192;

/// How many slowest root spans the sampler keeps exactly.
pub const SLOW_TOP_K: usize = 16;

/// Size of the deterministic reservoir sampling the remaining roots.
pub const SLOW_RESERVOIR: usize = 64;

/// A position in one trace tree: which tree (`trace_id`) and which span
/// within it (`span_id`). Copyable, 16 bytes on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Id of the trace tree (the root span's id; zero = untraced).
    pub trace_id: u64,
    /// Id of the span this context points at.
    pub span_id: u64,
}

impl TraceContext {
    /// The absent context: carried on the wire when tracing is off so
    /// envelope sizes (and therefore per-byte charges) never depend on
    /// whether tracing is enabled.
    pub const NONE: TraceContext = TraceContext { trace_id: 0, span_id: 0 };

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// Fixed-width wire encoding: `trace_id` then `span_id`, little
    /// endian. Always 16 bytes, even for [`TraceContext::NONE`].
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..].copy_from_slice(&self.span_id.to_le_bytes());
        out
    }

    /// Decodes a context from exactly 16 bytes (`None` otherwise).
    pub fn decode(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_le_bytes(bytes[..8].try_into().ok()?),
            span_id: u64::from_le_bytes(bytes[8..].try_into().ok()?),
        })
    }
}

/// One finished span, as stored in the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace tree this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique across the registry; greater than its
    /// causal parent's id, which makes trees acyclic by construction).
    pub span_id: u64,
    /// Causal parent span id (zero for a root).
    pub parent_span: u64,
    /// Span that physically enclosed this one on the same thread when it
    /// started (zero when none). Equal to `parent_span` for nested
    /// children; may differ for remote children that happen to run inside
    /// an unrelated active span.
    pub enclosed_by: u64,
    /// Scope-prefixed span name (e.g. `shard0.replica1.op.scan`).
    pub name: String,
    /// Operation class for latency aggregation (e.g. `"put"`, `"scan"`).
    pub op_class: &'static str,
    /// Whether the causal parent lives on the far side of a wire or
    /// queue boundary (replica replay joining the primary's tree).
    pub remote: bool,
    /// Platform charges attributed to this span's thread while it was
    /// open (total plus enclave/host/boundary split, ecalls, ocalls,
    /// cross-boundary bytes).
    pub charges: ThreadCharges,
    /// Span links: shared work this span waited on without owning it
    /// (a follower write links the leader's group-commit span).
    pub links: Vec<TraceContext>,
}

impl SpanRecord {
    /// This span's position as a [`TraceContext`].
    pub fn ctx(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: self.span_id }
    }

    /// Whether this span is the root of its trace tree.
    pub fn is_root(&self) -> bool {
        self.parent_span == 0
    }
}

/// One entry in the slow-op sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowSample {
    /// Trace id of the sampled root span.
    pub trace_id: u64,
    /// Operation class of the root.
    pub op_class: &'static str,
    /// Total virtual nanoseconds the root span charged.
    pub duration_ns: u64,
}

/// An exemplar trace id attached to one histogram bucket: the slowest
/// root observed in that bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace id of the exemplar root span.
    pub trace_id: u64,
    /// Its duration in virtual nanoseconds.
    pub duration_ns: u64,
}

/// Latency distribution of one operation class over root spans, with
/// per-bucket exemplar trace ids.
#[derive(Debug, Clone)]
pub struct OpClassStats {
    /// The operation class (`"put"`, `"get"`, `"scan"`, ...).
    pub op_class: &'static str,
    /// Root spans observed.
    pub count: u64,
    /// Sum of root durations (virtual ns).
    pub sum_ns: u64,
    /// Power-of-two duration buckets (same geometry as
    /// [`crate::Histogram`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Per-bucket exemplar: the slowest root that landed in the bucket.
    pub exemplars: [Option<Exemplar>; HISTOGRAM_BUCKETS],
}

impl Default for OpClassStats {
    fn default() -> Self {
        OpClassStats {
            op_class: "",
            count: 0,
            sum_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
            exemplars: [None; HISTOGRAM_BUCKETS],
        }
    }
}

impl OpClassStats {
    fn observe(&mut self, duration_ns: u64, trace_id: u64) {
        self.count += 1;
        self.sum_ns += duration_ns;
        let i = bucket_index(duration_ns);
        self.buckets[i] += 1;
        let keep = match self.exemplars[i] {
            Some(e) => duration_ns > e.duration_ns,
            None => true,
        };
        if keep {
            self.exemplars[i] = Some(Exemplar { trace_id, duration_ns });
        }
    }

    /// Estimated quantile (`0 < q <= 1`) as the inclusive upper bound of
    /// the bucket containing the rank, zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets, self.count, q)
    }

    /// Median duration estimate.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th percentile duration estimate.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th percentile duration estimate.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// The exemplar attached to the bucket at or above quantile `q` — the
    /// trace id an operator drills into for an outlier bucket.
    pub fn exemplar_at(&self, q: f64) -> Option<Exemplar> {
        if self.count == 0 {
            return None;
        }
        let target = quantile_from_buckets(&self.buckets, self.count, q);
        (0..HISTOGRAM_BUCKETS)
            .filter(|&i| bucket_bound(i) >= target)
            .filter_map(|i| self.exemplars[i])
            .next()
    }
}

/// Shared bucket-walk used by [`OpClassStats`] and the registry
/// histograms: returns the inclusive upper bound of the bucket holding
/// rank `ceil(q * count)`.
pub(crate) fn quantile_from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        cumulative += n;
        if cumulative >= rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(HISTOGRAM_BUCKETS - 1)
}

#[derive(Debug, Default)]
struct TracerState {
    ring: VecDeque<SpanRecord>,
    dropped: u64,
    classes: BTreeMap<&'static str, OpClassStats>,
    top: Vec<SlowSample>,
    reservoir: Vec<SlowSample>,
    roots_seen: u64,
    rng: u64,
}

impl TracerState {
    fn note_root(&mut self, sample: SlowSample) {
        // Exact top-K by duration (stable: earlier trace wins ties).
        if self.top.len() < SLOW_TOP_K {
            self.top.push(sample);
            self.top.sort_by_key(|s| std::cmp::Reverse(s.duration_ns));
        } else if sample.duration_ns > self.top[SLOW_TOP_K - 1].duration_ns {
            self.top[SLOW_TOP_K - 1] = sample;
            self.top.sort_by_key(|s| std::cmp::Reverse(s.duration_ns));
        }
        // Deterministic reservoir over *all* roots (LCG, no wall clock).
        self.roots_seen += 1;
        if self.reservoir.len() < SLOW_RESERVOIR {
            self.reservoir.push(sample);
        } else {
            self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (self.rng >> 33) % self.roots_seen;
            if (j as usize) < SLOW_RESERVOIR {
                self.reservoir[j as usize] = sample;
            }
        }
    }
}

/// The per-registry trace collector. Private to the crate; reached
/// through [`crate::Telemetry`] methods and the free functions here.
#[derive(Debug)]
pub(crate) struct Tracer {
    enabled: bool,
    next_id: AtomicU64,
    state: Mutex<TracerState>,
}

impl Tracer {
    pub(crate) fn new(enabled: bool) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled,
            // Id 0 is reserved for "no trace".
            next_id: AtomicU64::new(1),
            state: Mutex::new(TracerState { rng: 0x9E3779B97F4A7C15, ..Default::default() }),
        })
    }

    fn next(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a span: a root when no span of this registry is active on
    /// the calling thread, a nested child otherwise.
    pub(crate) fn start(self: &Arc<Self>, name: String, op_class: &'static str) -> TraceGuard {
        if !self.enabled {
            return TraceGuard::inert();
        }
        let top = ACTIVE.with(|stack| {
            stack
                .borrow()
                .last()
                .filter(|f| Arc::ptr_eq(&f.tracer, self))
                .map(|f| (f.trace_id, f.span_id))
        });
        let span_id = self.next();
        let (trace_id, parent_span, enclosed_by) = match top {
            Some((t, p)) => (t, p, p),
            None => (span_id, 0, 0),
        };
        self.open(trace_id, span_id, parent_span, enclosed_by, name, op_class, false)
    }

    /// Opens a *remote* child of an explicit causal parent carried across
    /// a wire/queue boundary. Inert when `ctx` is absent.
    pub(crate) fn start_child_of(
        self: &Arc<Self>,
        ctx: TraceContext,
        name: String,
        op_class: &'static str,
    ) -> TraceGuard {
        if !self.enabled || ctx.is_none() {
            return TraceGuard::inert();
        }
        let enclosed_by = ACTIVE.with(|stack| {
            stack.borrow().last().filter(|f| Arc::ptr_eq(&f.tracer, self)).map_or(0, |f| f.span_id)
        });
        let span_id = self.next();
        self.open(ctx.trace_id, span_id, ctx.span_id, enclosed_by, name, op_class, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn open(
        self: &Arc<Self>,
        trace_id: u64,
        span_id: u64,
        parent_span: u64,
        enclosed_by: u64,
        name: String,
        op_class: &'static str,
        remote: bool,
    ) -> TraceGuard {
        ACTIVE.with(|stack| {
            stack.borrow_mut().push(ActiveFrame {
                tracer: self.clone(),
                trace_id,
                span_id,
                links: Vec::new(),
            });
        });
        TraceGuard {
            active: Some(Pending {
                tracer: self.clone(),
                trace_id,
                span_id,
                parent_span,
                enclosed_by,
                name,
                op_class,
                remote,
                start: sgx_sim::thread_charges(),
            }),
            _not_send: PhantomData,
        }
    }

    fn record(&self, rec: SpanRecord) {
        let mut s = self.state.lock();
        if rec.is_root() {
            s.classes
                .entry(rec.op_class)
                .or_insert_with(|| OpClassStats { op_class: rec.op_class, ..Default::default() });
            // Split borrow: observe needs the class entry, note_root the rest.
            if let Some(agg) = s.classes.get_mut(rec.op_class) {
                agg.observe(rec.charges.ns, rec.trace_id);
            }
            s.note_root(SlowSample {
                trace_id: rec.trace_id,
                op_class: rec.op_class,
                duration_ns: rec.charges.ns,
            });
        }
        if s.ring.len() >= TRACE_RING_CAPACITY {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(rec);
    }

    pub(crate) fn records(&self) -> Vec<SpanRecord> {
        self.state.lock().ring.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    pub(crate) fn op_classes(&self) -> Vec<OpClassStats> {
        self.state.lock().classes.values().cloned().collect()
    }

    pub(crate) fn slow_samples(&self) -> (Vec<SlowSample>, Vec<SlowSample>) {
        let s = self.state.lock();
        (s.top.clone(), s.reservoir.clone())
    }
}

struct ActiveFrame {
    tracer: Arc<Tracer>,
    trace_id: u64,
    span_id: u64,
    links: Vec<TraceContext>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<ActiveFrame>> = const { RefCell::new(Vec::new()) };
}

/// The [`TraceContext`] of the innermost span active on the calling
/// thread, or [`TraceContext::NONE`]. This is what producers stamp onto
/// wire envelopes and queue entries.
pub fn current_context() -> TraceContext {
    ACTIVE.with(|stack| {
        stack.borrow().last().map_or(TraceContext::NONE, |f| TraceContext {
            trace_id: f.trace_id,
            span_id: f.span_id,
        })
    })
}

/// Records a span link from the innermost active span to `ctx`: shared
/// work (one group commit serving many requests) the current request
/// waited on. No-op when `ctx` is absent or no span is active.
pub fn link_current(ctx: TraceContext) {
    if ctx.is_none() {
        return;
    }
    ACTIVE.with(|stack| {
        if let Some(f) = stack.borrow_mut().last_mut() {
            if f.span_id != ctx.span_id && !f.links.contains(&ctx) {
                f.links.push(ctx);
            }
        }
    });
}

#[derive(Debug)]
struct Pending {
    tracer: Arc<Tracer>,
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    enclosed_by: u64,
    name: String,
    op_class: &'static str,
    remote: bool,
    start: ThreadCharges,
}

/// RAII guard for one trace span (see
/// [`Telemetry::trace_op`](crate::Telemetry::trace_op)).
///
/// Not `Send`: the charge delta and the propagation stack are
/// thread-local, so a guard must drop on the thread that opened it.
#[derive(Debug)]
pub struct TraceGuard {
    active: Option<Pending>,
    _not_send: PhantomData<*const ()>,
}

impl TraceGuard {
    /// An inert guard (disabled registry or absent parent context).
    pub(crate) fn inert() -> TraceGuard {
        TraceGuard { active: None, _not_send: PhantomData }
    }

    /// This span's context, for stamping onto queue entries or wire
    /// envelopes. [`TraceContext::NONE`] when inert.
    pub fn ctx(&self) -> TraceContext {
        self.active.as_ref().map_or(TraceContext::NONE, |p| TraceContext {
            trace_id: p.trace_id,
            span_id: p.span_id,
        })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(p) = self.active.take() else {
            return;
        };
        let links = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally ours is the top frame; search defensively so an
            // out-of-order drop cannot corrupt unrelated frames.
            let idx = stack.iter().rposition(|f| f.span_id == p.span_id);
            idx.map(|i| stack.remove(i).links).unwrap_or_default()
        });
        let charges = sgx_sim::thread_charges().since(&p.start);
        p.tracer.record(SpanRecord {
            trace_id: p.trace_id,
            span_id: p.span_id,
            parent_span: p.parent_span,
            enclosed_by: p.enclosed_by,
            name: p.name,
            op_class: p.op_class,
            remote: p.remote,
            charges,
            links,
        });
    }
}

/// Renders the tracer's state as a JSON document (what the bench harness
/// writes to `TRACES.<figure>.json`).
pub(crate) fn to_json(tracer: &Tracer) -> String {
    use std::fmt::Write as _;
    let records = tracer.records();
    let classes = tracer.op_classes();
    let (top, reservoir) = tracer.slow_samples();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"dropped_spans\": {},", tracer.dropped());
    out.push_str("  \"op_classes\": {\n");
    for (ci, c) in classes.iter().enumerate() {
        let comma = if ci + 1 == classes.len() { "" } else { "," };
        let _ = write!(
            out,
            "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"buckets\": [",
            c.op_class,
            c.count,
            c.sum_ns,
            c.p50_ns(),
            c.p99_ns(),
            c.p999_ns(),
        );
        let mut first = true;
        for i in 0..HISTOGRAM_BUCKETS {
            if c.buckets[i] == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            match c.exemplars[i] {
                Some(e) => {
                    let _ = write!(
                        out,
                        "{{\"le\": {}, \"count\": {}, \"exemplar_trace\": {}}}",
                        bucket_bound(i),
                        c.buckets[i],
                        e.trace_id
                    );
                }
                None => {
                    let _ =
                        write!(out, "{{\"le\": {}, \"count\": {}}}", bucket_bound(i), c.buckets[i]);
                }
            }
        }
        let _ = writeln!(out, "]}}{comma}");
    }
    out.push_str("  },\n");
    let render_samples = |out: &mut String, samples: &[SlowSample]| {
        for (i, s) in samples.iter().enumerate() {
            let comma = if i + 1 == samples.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "      {{\"trace_id\": {}, \"op_class\": \"{}\", \"duration_ns\": {}}}{comma}",
                s.trace_id, s.op_class, s.duration_ns
            );
        }
    };
    out.push_str("  \"slow\": {\n    \"top\": [\n");
    render_samples(&mut out, &top);
    out.push_str("    ],\n    \"reservoir\": [\n");
    render_samples(&mut out, &reservoir);
    out.push_str("    ]\n  },\n");
    out.push_str("  \"spans\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let links: Vec<String> =
            r.links.iter().map(|l| format!("[{}, {}]", l.trace_id, l.span_id)).collect();
        let _ = writeln!(
            out,
            "    {{\"trace_id\": {}, \"span_id\": {}, \"parent_span\": {}, \"enclosed_by\": {}, \"name\": \"{}\", \"op_class\": \"{}\", \"remote\": {}, \"total_ns\": {}, \"enclave_ns\": {}, \"host_ns\": {}, \"boundary_ns\": {}, \"ecalls\": {}, \"ocalls\": {}, \"cross_copy_bytes\": {}, \"links\": [{}]}}{comma}",
            r.trace_id,
            r.span_id,
            r.parent_span,
            r.enclosed_by,
            crate::export::esc(&r.name),
            r.op_class,
            r.remote,
            r.charges.ns,
            r.charges.enclave_ns,
            r.charges.host_ns,
            r.charges.boundary_ns,
            r.charges.ecalls,
            r.charges.ocalls,
            r.charges.cross_copy_bytes,
            links.join(", ")
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Arc<Tracer> {
        Tracer::new(true)
    }

    #[test]
    fn context_round_trips_and_none_is_zero() {
        let ctx = TraceContext { trace_id: 7, span_id: 9 };
        assert_eq!(TraceContext::decode(&ctx.encode()), Some(ctx));
        assert_eq!(TraceContext::decode(&TraceContext::NONE.encode()), Some(TraceContext::NONE));
        assert!(TraceContext::NONE.is_none());
        assert!(TraceContext::decode(&[0u8; 15]).is_none());
    }

    #[test]
    fn nesting_builds_a_tree() {
        let t = tracer();
        {
            let root = t.start("op.put".into(), "put");
            let root_ctx = root.ctx();
            {
                let child = t.start("commit.group".into(), "commit");
                assert_eq!(child.ctx().trace_id, root_ctx.trace_id);
            }
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        let child = &recs[0];
        let root = &recs[1];
        assert_eq!(root.parent_span, 0);
        assert_eq!(child.parent_span, root.span_id);
        assert_eq!(child.enclosed_by, root.span_id);
        assert_eq!(child.trace_id, root.trace_id);
        assert!(child.span_id > root.span_id, "child ids exceed parents: acyclic");
    }

    #[test]
    fn remote_children_join_the_parents_tree() {
        let t = tracer();
        let ctx = {
            let root = t.start("op.put".into(), "put");
            root.ctx()
        };
        drop(t.start_child_of(ctx, "replay.frame".into(), "replay"));
        let recs = t.records();
        let replay = recs.iter().find(|r| r.name == "replay.frame").unwrap();
        assert_eq!(replay.trace_id, ctx.trace_id);
        assert_eq!(replay.parent_span, ctx.span_id);
        assert_eq!(replay.enclosed_by, 0, "no physical enclosure");
        assert!(replay.remote);
    }

    #[test]
    fn links_record_on_the_active_frame() {
        let t = tracer();
        let commit_ctx = TraceContext { trace_id: 42, span_id: 42 };
        {
            let _g = t.start("op.put".into(), "put");
            link_current(commit_ctx);
            link_current(commit_ctx); // deduplicated
        }
        let recs = t.records();
        assert_eq!(recs[0].links, vec![commit_ctx]);
    }

    #[test]
    fn current_context_tracks_the_stack() {
        let t = tracer();
        assert!(current_context().is_none());
        {
            let g = t.start("op.put".into(), "put");
            assert_eq!(current_context(), g.ctx());
        }
        assert!(current_context().is_none());
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let t = tracer();
        for _ in 0..(TRACE_RING_CAPACITY + 10) {
            drop(t.start("op.get".into(), "get"));
        }
        assert_eq!(t.records().len(), TRACE_RING_CAPACITY);
        assert_eq!(t.dropped(), 10);
    }

    #[test]
    fn op_class_quantiles_and_exemplars() {
        let mut agg = OpClassStats { op_class: "get", ..Default::default() };
        for (d, id) in [(1u64, 1u64), (1, 2), (1, 3), (1000, 9)] {
            agg.observe(d, id);
        }
        assert_eq!(agg.count, 4);
        assert_eq!(agg.p50_ns(), bucket_bound(bucket_index(1)));
        assert_eq!(agg.p999_ns(), bucket_bound(bucket_index(1000)));
        let ex = agg.exemplar_at(0.999).unwrap();
        assert_eq!(ex.trace_id, 9, "outlier bucket carries its exemplar trace id");
    }

    #[test]
    fn slow_sampler_keeps_top_k_exactly() {
        let t = tracer();
        let mut s = t.state.lock();
        for i in 0..200u64 {
            s.note_root(SlowSample { trace_id: i, op_class: "put", duration_ns: i });
        }
        assert_eq!(s.top.len(), SLOW_TOP_K);
        assert_eq!(s.top[0].duration_ns, 199);
        assert_eq!(s.top[SLOW_TOP_K - 1].duration_ns, 199 - (SLOW_TOP_K as u64 - 1));
        assert_eq!(s.reservoir.len(), SLOW_RESERVOIR);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        let g = t.start("op.put".into(), "put");
        assert!(g.ctx().is_none());
        drop(g);
        assert!(t.records().is_empty());
    }
}
