//! The security audit stream.
//!
//! Every verification failure anywhere in the stack — a forged record, a
//! hidden level, a forked primary, a tampered value-log entry — is
//! reported here as a structured [`AuditEvent`] carrying the epoch, shard
//! and replica context of where it was detected. The stream keeps a
//! bounded ring of recent events for inspection plus *unbounded per-kind
//! counters*, so "did the suite's attack fire an event" assertions hold
//! even after the ring wraps. Registered [`AuditSink`]s (e.g.
//! `ct_log::SecurityAuditor`) observe every event synchronously, letting
//! an external auditor consume verification failures and fork evidence as
//! one stream.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

/// Maximum events retained in the ring (counters are unbounded).
pub const AUDIT_RING_CAPACITY: usize = 1024;

/// One security-relevant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Stream-wide sequence number (assigned at record time).
    pub seq: u64,
    /// Virtual timestamp (the reporting component's platform clock).
    pub at_ns: u64,
    /// Failure kind — for verification failures, the
    /// `VerificationFailure` variant name (`"HiddenLevel"`,
    /// `"WrongShard"`, …).
    pub kind: &'static str,
    /// Component that detected the failure (`"core.get"`,
    /// `"replica.sync"`, …).
    pub component: &'static str,
    /// Human-readable detail (the failure's `Display` output).
    pub detail: String,
    /// Epoch the failure was detected against, when known.
    pub epoch: Option<u64>,
    /// Shard that reported, when the component is sharded.
    pub shard: Option<u32>,
    /// Replica that reported, when the component is replicated.
    pub replica: Option<u32>,
}

impl AuditEvent {
    /// Starts an event of `kind` detected by `component`; `seq` is
    /// assigned when the event is recorded.
    pub fn new(kind: &'static str, component: &'static str) -> Self {
        AuditEvent {
            seq: 0,
            at_ns: 0,
            kind,
            component,
            detail: String::new(),
            epoch: None,
            shard: None,
            replica: None,
        }
    }

    /// Attaches the failure's rendered detail.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Attaches the virtual timestamp of detection.
    pub fn at_ns(mut self, ns: u64) -> Self {
        self.at_ns = ns;
        self
    }

    /// Attaches the epoch context.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Attaches the shard context.
    pub fn shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Attaches the replica context.
    pub fn replica(mut self, replica: u32) -> Self {
        self.replica = Some(replica);
        self
    }
}

/// Observer of the audit stream; receives every event synchronously at
/// record time.
pub trait AuditSink: Send + Sync {
    /// Called once per recorded event, in sequence order.
    fn on_audit(&self, event: &AuditEvent);
}

#[derive(Default)]
pub(crate) struct AuditStream {
    state: Mutex<AuditState>,
}

#[derive(Default)]
struct AuditState {
    next_seq: u64,
    ring: VecDeque<AuditEvent>,
    dropped: u64,
    by_kind: BTreeMap<&'static str, u64>,
    sinks: Vec<Arc<dyn AuditSink>>,
}

impl std::fmt::Debug for AuditStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("AuditStream")
            .field("recorded", &s.next_seq)
            .field("sinks", &s.sinks.len())
            .finish()
    }
}

impl AuditStream {
    pub(crate) fn record(&self, mut event: AuditEvent) {
        let mut s = self.state.lock();
        event.seq = s.next_seq;
        s.next_seq += 1;
        *s.by_kind.entry(event.kind).or_insert(0) += 1;
        if s.ring.len() == AUDIT_RING_CAPACITY {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(event.clone());
        let sinks = s.sinks.clone();
        drop(s);
        for sink in &sinks {
            sink.on_audit(&event);
        }
    }

    pub(crate) fn add_sink(&self, sink: Arc<dyn AuditSink>) {
        self.state.lock().sinks.push(sink);
    }

    pub(crate) fn events(&self) -> Vec<AuditEvent> {
        self.state.lock().ring.iter().cloned().collect()
    }

    pub(crate) fn count(&self, kind: &str) -> u64 {
        self.state.lock().by_kind.get(kind).copied().unwrap_or(0)
    }

    pub(crate) fn total(&self) -> u64 {
        self.state.lock().next_seq
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    pub(crate) fn by_kind(&self) -> Vec<(&'static str, u64)> {
        self.state.lock().by_kind.iter().map(|(k, v)| (*k, *v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ring_wraps_but_counters_do_not() {
        let stream = AuditStream::default();
        for _ in 0..AUDIT_RING_CAPACITY + 10 {
            stream.record(AuditEvent::new("ForgedRecord", "test"));
        }
        assert_eq!(stream.events().len(), AUDIT_RING_CAPACITY);
        assert_eq!(stream.dropped(), 10, "ring evictions are counted");
        assert_eq!(stream.count("ForgedRecord"), (AUDIT_RING_CAPACITY + 10) as u64);
        assert_eq!(stream.events().last().unwrap().seq, (AUDIT_RING_CAPACITY + 9) as u64);
    }

    #[test]
    fn sinks_observe_every_event() {
        struct CountSink(AtomicU64);
        impl AuditSink for CountSink {
            fn on_audit(&self, _event: &AuditEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stream = AuditStream::default();
        let sink = Arc::new(CountSink(AtomicU64::new(0)));
        stream.add_sink(sink.clone());
        stream.record(AuditEvent::new("HiddenLevel", "test").epoch(7).shard(2));
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
        let ev = &stream.events()[0];
        assert_eq!((ev.epoch, ev.shard, ev.replica), (Some(7), Some(2), None));
    }
}
