//! Snapshot assembly and rendering: JSON and Prometheus text format.
//!
//! The JSON document is what the bench harness writes as
//! `TELEMETRY.<figure>.json`; the Prometheus rendering is the scrape
//! surface the future network front-end will expose. Both are hand-rolled
//! (the workspace is offline; no serde) and deterministic: maps are
//! B-tree-ordered and histogram buckets with zero counts are elided.

use std::fmt::Write as _;
use std::sync::Arc;

use sgx_sim::{Platform, StatsSnapshot, TimeSplit};

use crate::audit::AuditEvent;
use crate::metrics::{bucket_bound, Histogram};
use crate::span::SpanStats;

/// Point-in-time capture of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub(crate) fn capture(name: &str, h: &Histogram) -> Self {
        let buckets = h
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_bound(i), *c))
            .collect();
        HistogramSnapshot { name: name.to_string(), count: h.count(), sum: h.sum(), buckets }
    }
}

/// Point-in-time capture of one attached platform.
#[derive(Debug, Clone)]
pub struct PlatformSnapshot {
    /// Label given at attach time.
    pub label: String,
    /// The platform's virtual clock.
    pub clock_ns: u64,
    /// Virtual time split by world (enclave / host / boundary).
    pub time: TimeSplit,
    /// The platform's event counters.
    pub stats: StatsSnapshot,
}

impl PlatformSnapshot {
    pub(crate) fn capture(label: &str, p: &Arc<Platform>) -> Self {
        PlatformSnapshot {
            label: label.to_string(),
            clock_ns: p.clock().now_ns(),
            time: p.time_split(),
            stats: p.stats(),
        }
    }
}

/// A full registry capture (see [`crate::Telemetry::snapshot`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All counters, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// All gauges, name-ordered.
    pub gauges: Vec<(String, u64)>,
    /// All histograms, name-ordered.
    pub histograms: Vec<HistogramSnapshot>,
    /// All spans, name-ordered.
    pub spans: Vec<(String, SpanStats)>,
    /// All attached platforms, in attach order.
    pub platforms: Vec<PlatformSnapshot>,
    /// Total audit events ever recorded.
    pub audit_total: u64,
    /// Audit events evicted from the bounded ring.
    pub audit_dropped: u64,
    /// Per-kind audit counts (unbounded).
    pub audit_by_kind: Vec<(String, u64)>,
    /// Recent audit events (bounded ring).
    pub audit_events: Vec<AuditEvent>,
    /// Trace spans evicted from the bounded trace ring.
    pub trace_dropped: u64,
}

/// Escapes a string for embedding in a JSON string or Prometheus label
/// value: backslashes, double quotes, and newlines (both bare `\n` and
/// `\r`) — per the Prometheus exposition format, which would otherwise
/// break line-oriented parsers on a raw newline.
pub(crate) fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n").replace('\r', "\\r")
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

impl Snapshot {
    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"generated_by\": \"elsm-telemetry\",\n");
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {v}{comma}", esc(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {v}{comma}", esc(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() { "," } else { "" };
            let buckets: Vec<String> =
                h.buckets.iter().map(|(le, c)| format!("[{le}, {c}]")).collect();
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{comma}",
                esc(&h.name),
                h.count,
                h.sum,
                buckets.join(", ")
            );
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"enclave_ns\": {}, \
                 \"host_ns\": {}, \"boundary_ns\": {}, \"ecalls\": {}, \"ocalls\": {}, \
                 \"cross_copy_bytes\": {}}}{comma}",
                esc(name),
                s.count,
                s.total_ns,
                s.enclave_ns,
                s.host_ns,
                s.boundary_ns,
                s.ecalls,
                s.ocalls,
                s.cross_copy_bytes
            );
        }
        out.push_str("\n  },\n  \"platforms\": {");
        for (i, p) in self.platforms.iter().enumerate() {
            let comma = if i + 1 < self.platforms.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"clock_ns\": {}, \"enclave_ns\": {}, \"host_ns\": {}, \
                 \"boundary_ns\": {}, \"ecalls\": {}, \"ocalls\": {}, \"epc_page_ins\": {}, \
                 \"epc_page_outs\": {}, \"cross_copy_bytes\": {}, \"disk_seeks\": {}, \
                 \"disk_bytes\": {}, \"hash_blocks\": {}, \"counter_writes\": {}}}{comma}",
                esc(&p.label),
                p.clock_ns,
                p.time.enclave_ns,
                p.time.host_ns,
                p.time.boundary_ns,
                p.stats.ecalls,
                p.stats.ocalls,
                p.stats.epc_page_ins,
                p.stats.epc_page_outs,
                p.stats.cross_copy_bytes,
                p.stats.disk_seeks,
                p.stats.disk_bytes,
                p.stats.hash_blocks,
                p.stats.counter_writes
            );
        }
        let _ = write!(
            out,
            "\n  }},\n  \"trace\": {{\"dropped_spans\": {}}},\n  \"audit\": {{\n    \"total\": \
             {},\n    \"dropped\": {},\n    \"by_kind\": {{",
            self.trace_dropped, self.audit_total, self.audit_dropped
        );
        for (i, (kind, v)) in self.audit_by_kind.iter().enumerate() {
            let comma = if i + 1 < self.audit_by_kind.len() { "," } else { "" };
            let _ = write!(out, "\n      \"{}\": {v}{comma}", esc(kind));
        }
        out.push_str("\n    },\n    \"events\": [");
        for (i, e) in self.audit_events.iter().enumerate() {
            let comma = if i + 1 < self.audit_events.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n      {{\"seq\": {}, \"at_ns\": {}, \"kind\": \"{}\", \"component\": \
                 \"{}\", \"detail\": \"{}\", \"epoch\": {}, \"shard\": {}, \"replica\": \
                 {}}}{comma}",
                e.seq,
                e.at_ns,
                esc(e.kind),
                esc(e.component),
                esc(&e.detail),
                opt(e.epoch),
                opt(e.shard.map(u64::from)),
                opt(e.replica.map(u64::from))
            );
        }
        out.push_str("\n    ]\n  }\n}\n");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (`elsm_` prefix, metric names with dots mapped to underscores).
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE elsm_{n}_total counter\nelsm_{n}_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE elsm_{n} gauge\nelsm_{n} {v}");
        }
        for h in &self.histograms {
            let n = sanitize(&h.name);
            let _ = writeln!(out, "# TYPE elsm_{n} histogram");
            let mut cumulative = 0u64;
            for (le, c) in &h.buckets {
                cumulative += c;
                let _ = writeln!(out, "elsm_{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "elsm_{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "elsm_{n}_sum {}\nelsm_{n}_count {}", h.sum, h.count);
        }
        for (name, s) in &self.spans {
            let label = esc(name);
            let _ = writeln!(out, "elsm_span_count{{span=\"{label}\"}} {}", s.count);
            let _ = writeln!(out, "elsm_span_total_ns{{span=\"{label}\"}} {}", s.total_ns);
            let _ = writeln!(out, "elsm_span_enclave_ns{{span=\"{label}\"}} {}", s.enclave_ns);
            let _ = writeln!(out, "elsm_span_host_ns{{span=\"{label}\"}} {}", s.host_ns);
            let _ = writeln!(out, "elsm_span_boundary_ns{{span=\"{label}\"}} {}", s.boundary_ns);
            let _ = writeln!(out, "elsm_span_ecalls{{span=\"{label}\"}} {}", s.ecalls);
            let _ = writeln!(out, "elsm_span_ocalls{{span=\"{label}\"}} {}", s.ocalls);
        }
        for p in &self.platforms {
            let label = esc(&p.label);
            let _ = writeln!(out, "elsm_platform_clock_ns{{platform=\"{label}\"}} {}", p.clock_ns);
            let _ = writeln!(
                out,
                "elsm_platform_enclave_ns{{platform=\"{label}\"}} {}",
                p.time.enclave_ns
            );
            let _ =
                writeln!(out, "elsm_platform_host_ns{{platform=\"{label}\"}} {}", p.time.host_ns);
            let _ = writeln!(
                out,
                "elsm_platform_boundary_ns{{platform=\"{label}\"}} {}",
                p.time.boundary_ns
            );
            let _ =
                writeln!(out, "elsm_platform_ecalls{{platform=\"{label}\"}} {}", p.stats.ecalls);
            let _ =
                writeln!(out, "elsm_platform_ocalls{{platform=\"{label}\"}} {}", p.stats.ocalls);
        }
        let _ = writeln!(out, "# TYPE elsm_audit_events_total counter");
        for (kind, v) in &self.audit_by_kind {
            let _ = writeln!(out, "elsm_audit_events_total{{kind=\"{}\"}} {v}", esc(kind));
        }
        let _ = writeln!(
            out,
            "# TYPE elsm_audit_events_dropped_total counter\nelsm_audit_events_dropped_total {}",
            self.audit_dropped
        );
        let _ = writeln!(
            out,
            "# TYPE elsm_trace_spans_dropped_total counter\nelsm_trace_spans_dropped_total {}",
            self.trace_dropped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{AuditEvent, Telemetry};
    use sgx_sim::Platform;

    fn populated() -> Telemetry {
        let tel = Telemetry::new();
        let p = Platform::with_defaults();
        tel.attach_platform("store", &p);
        tel.counter("db.puts").add(7);
        tel.gauge("compaction.debt_bytes").set(4096);
        tel.histogram("commit.batches_per_group").observe(3);
        let span = tel.span("flush.merge");
        p.ecall(|| {
            let _g = span.start();
            p.charge_hash(64);
        });
        tel.audit(AuditEvent::new("HiddenLevel", "core.scan").epoch(3).detail("level 2 hidden"));
        tel
    }

    #[test]
    fn json_contains_all_sections() {
        let json = populated().to_json();
        for needle in [
            "\"db.puts\": 7",
            "\"compaction.debt_bytes\": 4096",
            "\"commit.batches_per_group\"",
            "\"flush.merge\"",
            "\"enclave_ns\"",
            "\"store\"",
            "\"kind\": \"HiddenLevel\"",
            "\"epoch\": 3",
            "\"shard\": null",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let text = populated().to_prometheus();
        assert!(text.contains("elsm_db_puts_total 7"));
        assert!(text.contains("elsm_compaction_debt_bytes 4096"));
        assert!(text.contains("elsm_commit_batches_per_group_bucket{le=\"3\"} 1"));
        assert!(text.contains("elsm_commit_batches_per_group_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("elsm_span_enclave_ns{span=\"flush.merge\"}"));
        assert!(text.contains("elsm_platform_ecalls{platform=\"store\"} 1"));
        assert!(text.contains("# TYPE elsm_audit_events_total counter"));
        assert!(text.contains("elsm_audit_events_total{kind=\"HiddenLevel\"} 1"));
        assert!(text.contains("elsm_audit_events_dropped_total 0"));
        assert!(text.contains("elsm_trace_spans_dropped_total 0"));
    }

    #[test]
    fn label_values_escape_newlines_quotes_and_backslashes() {
        let tel = Telemetry::new();
        tel.audit(
            AuditEvent::new("ForgedRecord", "core.get").detail("line1\nline2 \"x\" a\\b\rend"),
        );
        let json = tel.to_json();
        assert!(json.contains("line1\\nline2 \\\"x\\\" a\\\\b\\rend"));
        assert!(!json.contains("line1\nline2"), "no raw newline inside a JSON string");
        assert_eq!(super::esc("a\\b\"c\nd\re"), "a\\\\b\\\"c\\nd\\re");
        assert!(tel.to_prometheus().contains("kind=\"ForgedRecord\""));
    }
}
