//! # elsm-telemetry
//!
//! Unified observability for the eLSM stack: a lock-free metrics registry,
//! span-based tracing that attributes virtual time to **enclave vs host**,
//! and a structured security **audit stream**.
//!
//! One [`Telemetry`] handle is threaded through a store's options and
//! shared (cheaply, via `Arc`) by every layer that instruments itself:
//!
//! * **Counters / gauges** ([`Counter`], [`Gauge`]) are always live — the
//!   store's own bookkeeping (`DbStats`, cache hit/miss) is expressed over
//!   them, so there is exactly one copy of every count and no second
//!   bookkeeping path to drift from. Counters are sharded atomics; an
//!   increment costs the same as the plain `AtomicU64` it replaces.
//! * **Spans / histograms** ([`SpanHandle`], [`Histogram`]) are the
//!   tracing layer and obey the enabled gate: a disabled registry reduces
//!   them to a branch on a cached bool, and they charge *zero virtual
//!   time* either way — telemetry never perturbs the simulation.
//! * **The audit stream** ([`AuditEvent`], [`AuditSink`]) records every
//!   verification failure with epoch/shard/replica context and fans it
//!   out to registered sinks (`ct_log::SecurityAuditor` feeds the fork
//!   monitor from it).
//!
//! Snapshots export as JSON ([`Telemetry::to_json`]) and Prometheus text
//! format ([`Telemetry::to_prometheus`]); the bench harness writes one
//! `TELEMETRY.<figure>.json` per figure bin.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::Platform;
//!
//! let tel = telemetry::Telemetry::new();
//! let platform = Platform::with_defaults();
//! tel.attach_platform("store", &platform);
//!
//! let puts = tel.counter("db.puts");
//! let commit = tel.span("commit.group");
//! {
//!     let _g = commit.start();
//!     platform.ecall(|| puts.inc());
//! }
//! assert_eq!(puts.value(), 1);
//! assert_eq!(commit.stats().ecalls, 1);
//! assert!(tel.to_json().contains("\"db.puts\": 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod export;
pub mod metrics;
pub mod span;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sgx_sim::Platform;

pub use audit::{AuditEvent, AuditSink, AUDIT_RING_CAPACITY};
pub use export::{HistogramSnapshot, PlatformSnapshot, Snapshot};
pub use metrics::{bucket_bound, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use span::{SpanGuard, SpanHandle, SpanStats};
pub use trace::{
    OpClassStats, SlowSample, SpanRecord, TraceContext, TraceGuard, SLOW_RESERVOIR, SLOW_TOP_K,
    TRACE_RING_CAPACITY,
};

use audit::AuditStream;
use metrics::HistogramInner;
use span::SpanAgg;
use trace::Tracer;

#[derive(Debug)]
struct Registry {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanHandle>>,
    platforms: Mutex<Vec<(String, Arc<Platform>)>>,
    audit: AuditStream,
    tracer: Arc<Tracer>,
}

impl Registry {
    fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            platforms: Mutex::new(Vec::new()),
            audit: AuditStream::default(),
            tracer: Tracer::new(enabled),
        }
    }
}

/// A handle onto one telemetry registry.
///
/// Cheap to clone; [`Telemetry::scoped`] derives a handle that prefixes
/// every metric name (how a sharded store keeps `shard0.db.puts` and
/// `shard1.db.puts` apart while sharing one registry). The default handle
/// is *disabled*: counters and the audit stream still work (they are the
/// store's only bookkeeping), but spans and histograms record nothing and
/// platforms are not retained.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Registry>,
    prefix: String,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A fresh registry with tracing enabled.
    pub fn new() -> Self {
        Telemetry { inner: Arc::new(Registry::new(true)), prefix: String::new() }
    }

    /// A fresh registry with tracing disabled: counters, gauges and audit
    /// events still record (they are primary bookkeeping), spans and
    /// histograms become no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: Arc::new(Registry::new(false)), prefix: String::new() }
    }

    /// Whether tracing (spans, histograms, platform retention) is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// A handle onto the same registry that prefixes every metric name
    /// with `scope` + `"."`.
    pub fn scoped(&self, scope: &str) -> Telemetry {
        Telemetry { inner: self.inner.clone(), prefix: format!("{}{scope}.", self.prefix) }
    }

    fn name(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// Registers (or finds) the counter `name` under this handle's scope.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.counters.lock().entry(self.name(name)).or_default().clone()
    }

    /// Registers (or finds) the gauge `name` under this handle's scope.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.gauges.lock().entry(self.name(name)).or_default().clone()
    }

    /// Registers (or finds) the histogram `name` under this handle's
    /// scope.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .entry(self.name(name))
            .or_insert_with(|| Histogram {
                inner: Arc::new(HistogramInner::new(self.inner.enabled)),
            })
            .clone()
    }

    /// Registers (or finds) the span `name` under this handle's scope.
    pub fn span(&self, name: &str) -> SpanHandle {
        self.inner
            .spans
            .lock()
            .entry(self.name(name))
            .or_insert_with(|| SpanHandle { agg: Arc::new(SpanAgg::new(self.inner.enabled)) })
            .clone()
    }

    /// Retains `platform` so snapshots report its clock, enclave/host time
    /// split and event counters under `label` (scoped, deduplicated with a
    /// `#n` suffix). No-op when tracing is disabled — a disabled registry
    /// must not extend platform lifetimes.
    pub fn attach_platform(&self, label: &str, platform: &Arc<Platform>) {
        if !self.inner.enabled {
            return;
        }
        let mut platforms = self.inner.platforms.lock();
        let base = self.name(label);
        let mut unique = base.clone();
        let mut n = 1;
        while platforms.iter().any(|(l, _)| *l == unique) {
            unique = format!("{base}#{n}");
            n += 1;
        }
        platforms.push((unique, platform.clone()));
    }

    /// Opens a causal trace span named `name` (scope-prefixed) in
    /// operation class `op_class`: the root of a fresh trace tree when no
    /// span is active on the calling thread, a nested child of the
    /// innermost active span otherwise. Returns an inert guard on a
    /// disabled registry. Charges zero virtual time either way.
    pub fn trace_op(&self, name: &str, op_class: &'static str) -> TraceGuard {
        if !self.inner.enabled {
            return TraceGuard::inert();
        }
        self.inner.tracer.start(self.name(name), op_class)
    }

    /// Opens a *remote* child span of `ctx` — a causal parent carried
    /// across a wire or queue boundary (replica replay joining the
    /// primary's tree). Inert when the registry is disabled or `ctx` is
    /// [`TraceContext::NONE`].
    pub fn trace_child_of(
        &self,
        ctx: TraceContext,
        name: &str,
        op_class: &'static str,
    ) -> TraceGuard {
        if !self.inner.enabled || ctx.is_none() {
            return TraceGuard::inert();
        }
        self.inner.tracer.start_child_of(ctx, self.name(name), op_class)
    }

    /// Finished spans currently held in the bounded trace ring (oldest
    /// first).
    pub fn trace_records(&self) -> Vec<SpanRecord> {
        self.inner.tracer.records()
    }

    /// Spans dropped from the trace ring since creation.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.tracer.dropped()
    }

    /// Per-op-class latency distributions over root spans, with exemplar
    /// trace ids.
    pub fn op_class_stats(&self) -> Vec<OpClassStats> {
        self.inner.tracer.op_classes()
    }

    /// The slow-op sampler's state: `(top-K by duration, reservoir)`.
    pub fn slow_traces(&self) -> (Vec<SlowSample>, Vec<SlowSample>) {
        self.inner.tracer.slow_samples()
    }

    /// Renders the tracer's state (op-class distributions, slow samples,
    /// span ring) as a JSON document — what the bench harness writes to
    /// `TRACES.<figure>.json`.
    pub fn traces_to_json(&self) -> String {
        trace::to_json(&self.inner.tracer)
    }

    /// Records an event on the audit stream (always live; the scope prefix
    /// does not apply — the stream is registry-wide by design, so an
    /// auditor consumes one stream however many shards feed it).
    pub fn audit(&self, event: AuditEvent) {
        self.inner.audit.record(event);
    }

    /// Registers a sink observing every subsequent audit event.
    pub fn add_audit_sink(&self, sink: Arc<dyn AuditSink>) {
        self.inner.audit.add_sink(sink);
    }

    /// Recent audit events (bounded ring; see [`AUDIT_RING_CAPACITY`]).
    pub fn audit_events(&self) -> Vec<AuditEvent> {
        self.inner.audit.events()
    }

    /// Total events ever recorded of `kind` (unbounded, survives ring
    /// wrap).
    pub fn audit_count(&self, kind: &str) -> u64 {
        self.inner.audit.count(kind)
    }

    /// Total events ever recorded.
    pub fn audit_total(&self) -> u64 {
        self.inner.audit.total()
    }

    /// Convenience: current value of counter `name` under this scope
    /// (zero if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.counters.lock().get(&self.name(name)).map(|c| c.value()).unwrap_or(0)
    }

    /// Point-in-time snapshot of the whole registry (ignores scoping:
    /// all metrics, spans, platforms and audit state).
    pub fn snapshot(&self) -> Snapshot {
        let counters =
            self.inner.counters.lock().iter().map(|(k, c)| (k.clone(), c.value())).collect();
        let gauges = self.inner.gauges.lock().iter().map(|(k, g)| (k.clone(), g.value())).collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| HistogramSnapshot::capture(k, h))
            .collect();
        let spans = self.inner.spans.lock().iter().map(|(k, s)| (k.clone(), s.stats())).collect();
        let platforms = self
            .inner
            .platforms
            .lock()
            .iter()
            .map(|(label, p)| PlatformSnapshot::capture(label, p))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
            platforms,
            audit_total: self.inner.audit.total(),
            audit_dropped: self.inner.audit.dropped(),
            trace_dropped: self.inner.tracer.dropped(),
            audit_by_kind: self
                .inner
                .audit
                .by_kind()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            audit_events: self.inner.audit.events(),
        }
    }

    /// Renders a snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Renders a snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_handles_share_a_registry_but_not_names() {
        let tel = Telemetry::new();
        let s0 = tel.scoped("shard0");
        let s1 = tel.scoped("shard1");
        s0.counter("db.puts").add(3);
        s1.counter("db.puts").add(5);
        assert_eq!(tel.counter_value("shard0.db.puts"), 3);
        assert_eq!(s0.counter_value("db.puts"), 3);
        assert_eq!(s1.counter_value("db.puts"), 5);
        let snap = tel.snapshot();
        assert_eq!(snap.counters.len(), 2);
    }

    #[test]
    fn default_is_disabled_but_counts() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.counter("c").inc();
        assert_eq!(tel.counter_value("c"), 1);
        let span = tel.span("s");
        drop(span.start());
        assert_eq!(span.stats().count, 0, "disabled spans record nothing");
        let p = Platform::with_defaults();
        tel.attach_platform("p", &p);
        assert!(tel.snapshot().platforms.is_empty(), "disabled registries drop platforms");
        tel.audit(AuditEvent::new("ForgedRecord", "test"));
        assert_eq!(tel.audit_count("ForgedRecord"), 1, "audit is always live");
    }

    #[test]
    fn platform_labels_deduplicate() {
        let tel = Telemetry::new();
        let p = Platform::with_defaults();
        tel.attach_platform("store", &p);
        tel.attach_platform("store", &p);
        let labels: Vec<String> = tel.snapshot().platforms.into_iter().map(|p| p.label).collect();
        assert_eq!(labels, vec!["store".to_string(), "store#1".to_string()]);
    }
}
