//! Lock-free metric primitives: counters, gauges, fixed-bucket histograms.
//!
//! All three are plain atomics once registered — registration takes a lock
//! on the registry's name table, but the handles returned are `Arc`s whose
//! hot-path methods never lock, matching the PR 2 lock-free-reader
//! philosophy. Counters additionally stripe their cell across shards so
//! concurrent writers on different threads do not contend on one cache
//! line.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of stripes a [`Counter`] spreads its value over.
pub(crate) const COUNTER_SHARDS: usize = 8;

/// One cache line worth of counter, so stripes never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedAtomic(pub(crate) AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The stripe this thread writes; assigned round-robin at first use.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

#[derive(Debug, Default)]
pub(crate) struct CounterInner {
    pub(crate) shards: [PaddedAtomic; COUNTER_SHARDS],
}

/// A monotonically increasing, sharded-atomic counter.
///
/// Cheap to clone (an `Arc`); increments are one relaxed `fetch_add` on a
/// thread-striped cache line, reads sum the stripes.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) inner: Arc<CounterInner>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.shards[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over stripes).
    pub fn value(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) inner: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`] (power-of-two bounds; bucket `i`
/// counts values with bit length `i`, i.e. `v < 2^i`, cumulative).
pub const HISTOGRAM_BUCKETS: usize = 40;

#[derive(Debug)]
pub(crate) struct HistogramInner {
    pub(crate) enabled: bool,
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new(enabled: bool) -> Self {
        HistogramInner {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket value `v` falls into: its bit length, clamped.
pub(crate) fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; the last bucket is
/// unbounded).
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed power-of-two-bucket histogram.
///
/// Observation is two relaxed atomic adds when the owning registry is
/// enabled, and a branch on a cached bool when it is not — distribution
/// tracking is part of the *tracing* layer and obeys the enabled gate,
/// unlike [`Counter`]s which are always live.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !self.inner.enabled {
            return;
        }
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), bucket `i` covering values of
    /// bit length `i`.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated quantile (`0 < q <= 1`): the inclusive upper bound of
    /// the bucket containing rank `ceil(q * count)`; zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        crate::trace::quantile_from_buckets(&self.buckets(), self.count(), q)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = Histogram { inner: Arc::new(HistogramInner::new(true)) };
        for v in [0, 1, 5, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.buckets()[3], 2, "two values of bit length 3");
    }

    #[test]
    fn histogram_quantiles_walk_buckets() {
        let h = Histogram { inner: Arc::new(HistogramInner::new(true)) };
        assert_eq!(h.p50(), 0, "empty histogram quantiles are zero");
        for _ in 0..997 {
            h.observe(10);
        }
        for _ in 0..2 {
            h.observe(1000);
        }
        h.observe(100_000);
        assert_eq!(h.p50(), bucket_bound(bucket_index(10)));
        assert_eq!(h.p99(), bucket_bound(bucket_index(10)));
        assert_eq!(h.p999(), bucket_bound(bucket_index(1000)));
        assert_eq!(h.quantile(1.0), bucket_bound(bucket_index(100_000)));
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram { inner: Arc::new(HistogramInner::new(false)) };
        h.observe(42);
        assert_eq!(h.count(), 0);
    }
}
