//! Span-based tracing with enclave/host virtual-time attribution.
//!
//! A [`SpanHandle`] names one region of interest (a flush phase, a commit
//! group, a compaction job). Starting it snapshots the calling thread's
//! cumulative platform charges ([`sgx_sim::thread_charges`]); when the
//! guard drops, the delta — total virtual time split into enclave / host /
//! boundary, plus ecall/ocall transitions and cross-boundary bytes — is
//! folded into the span's aggregate. Because the delta rides thread-local
//! accumulators, concurrent threads in unrelated code never pollute a
//! span, and a disabled registry reduces `start()` to a branch on a
//! cached bool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sgx_sim::ThreadCharges;

use crate::metrics::{bucket_index, HISTOGRAM_BUCKETS};

#[derive(Debug)]
pub(crate) struct SpanAgg {
    pub(crate) enabled: bool,
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) enclave_ns: AtomicU64,
    pub(crate) host_ns: AtomicU64,
    pub(crate) boundary_ns: AtomicU64,
    pub(crate) ecalls: AtomicU64,
    pub(crate) ocalls: AtomicU64,
    pub(crate) cross_copy_bytes: AtomicU64,
    /// Distribution of per-activation total virtual ns.
    pub(crate) duration_buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl SpanAgg {
    pub(crate) fn new(enabled: bool) -> Self {
        SpanAgg {
            enabled,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            enclave_ns: AtomicU64::new(0),
            host_ns: AtomicU64::new(0),
            boundary_ns: AtomicU64::new(0),
            ecalls: AtomicU64::new(0),
            ocalls: AtomicU64::new(0),
            cross_copy_bytes: AtomicU64::new(0),
            duration_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, d: ThreadCharges) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(d.ns, Ordering::Relaxed);
        self.enclave_ns.fetch_add(d.enclave_ns, Ordering::Relaxed);
        self.host_ns.fetch_add(d.host_ns, Ordering::Relaxed);
        self.boundary_ns.fetch_add(d.boundary_ns, Ordering::Relaxed);
        self.ecalls.fetch_add(d.ecalls, Ordering::Relaxed);
        self.ocalls.fetch_add(d.ocalls, Ordering::Relaxed);
        self.cross_copy_bytes.fetch_add(d.cross_copy_bytes, Ordering::Relaxed);
        self.duration_buckets[bucket_index(d.ns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// A registered, named span. Cheap to clone; `start()` returns an RAII
/// guard that attributes the enclosed work on drop.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    pub(crate) agg: Arc<SpanAgg>,
}

impl SpanHandle {
    /// Opens one activation of the span on the calling thread.
    #[inline]
    pub fn start(&self) -> SpanGuard {
        if !self.agg.enabled {
            return SpanGuard { active: None };
        }
        SpanGuard { active: Some((self.agg.clone(), sgx_sim::thread_charges())) }
    }

    /// Point-in-time aggregate of all completed activations.
    pub fn stats(&self) -> SpanStats {
        SpanStats {
            count: self.agg.count.load(Ordering::Relaxed),
            total_ns: self.agg.total_ns.load(Ordering::Relaxed),
            enclave_ns: self.agg.enclave_ns.load(Ordering::Relaxed),
            host_ns: self.agg.host_ns.load(Ordering::Relaxed),
            boundary_ns: self.agg.boundary_ns.load(Ordering::Relaxed),
            ecalls: self.agg.ecalls.load(Ordering::Relaxed),
            ocalls: self.agg.ocalls.load(Ordering::Relaxed),
            cross_copy_bytes: self.agg.cross_copy_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate over a span's completed activations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed activations.
    pub count: u64,
    /// Total virtual nanoseconds attributed.
    pub total_ns: u64,
    /// Portion spent in enclave execution.
    pub enclave_ns: u64,
    /// Portion spent in host execution.
    pub host_ns: u64,
    /// Portion spent in world switches / cross-boundary copies.
    pub boundary_ns: u64,
    /// ECall transitions made inside the span.
    pub ecalls: u64,
    /// OCall transitions made inside the span.
    pub ocalls: u64,
    /// Bytes copied across the enclave boundary inside the span.
    pub cross_copy_bytes: u64,
}

/// RAII guard for one span activation (see [`SpanHandle::start`]).
///
/// Not `Send`: the attribution delta is computed from thread-local
/// accumulators, so a guard must drop on the thread that started it.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Arc<SpanAgg>, ThreadCharges)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((agg, start)) = self.active.take() {
            agg.record(sgx_sim::thread_charges().since(&start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::Platform;

    #[test]
    fn span_attributes_thread_work() {
        let p = Platform::with_defaults();
        let span = SpanHandle { agg: Arc::new(SpanAgg::new(true)) };
        {
            let _g = span.start();
            p.ecall(|| p.charge_hash(128));
        }
        let s = span.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.ecalls, 1);
        assert_eq!(s.total_ns, s.enclave_ns + s.host_ns + s.boundary_ns);
        assert_eq!(s.enclave_ns, p.cost().hash_cost(128));
        assert_eq!(s.boundary_ns, p.cost().ecall_ns);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let p = Platform::with_defaults();
        let span = SpanHandle { agg: Arc::new(SpanAgg::new(false)) };
        {
            let _g = span.start();
            p.charge_hash(128);
        }
        assert_eq!(span.stats(), SpanStats::default());
    }
}
