//! The log auditor: a browser-side client validating certificates (§5.7).
//!
//! "A log auditor running along with a web browser needs to validate the
//! certificate being used by the browser. Given a certificate, the log
//! auditor queries the log server for a proof of inclusion." With eLSM the
//! enclave verifies the inclusion proof, so the auditor only compares the
//! presented certificate against the (verified-fresh) logged one.

use crate::cert::Certificate;
use crate::server::CtLogServer;
use elsm::ElsmError;

/// Why the auditor rejects a presented certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The presented certificate is the current logged one: accept.
    Valid,
    /// The hostname has no current certificate (revoked or never issued).
    NotInLog,
    /// A different (newer) certificate is logged — the presented one is
    /// superseded or outright mis-issued.
    Mismatch {
        /// Serial of the certificate the log currently holds.
        logged_serial: u64,
    },
}

/// A TLS-handshake-time certificate auditor.
#[derive(Debug)]
pub struct LogAuditor<'a> {
    server: &'a CtLogServer,
}

impl<'a> LogAuditor<'a> {
    /// Creates an auditor bound to a log server.
    pub fn new(server: &'a CtLogServer) -> Self {
        LogAuditor { server }
    }

    /// Audits a certificate presented during a handshake.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] when the log server's answer
    /// itself fails authentication — the auditor must treat that as a
    /// compromised log, not as a missing certificate.
    pub fn audit(&self, presented: &Certificate) -> Result<AuditVerdict, ElsmError> {
        match self.server.lookup(&presented.hostname)? {
            None => Ok(AuditVerdict::NotInLog),
            Some(logged) => {
                if logged.certificate.cert_hash() == presented.cert_hash() {
                    Ok(AuditVerdict::Valid)
                } else {
                    Ok(AuditVerdict::Mismatch { logged_serial: logged.certificate.serial })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::synthesize;
    use sgx_sim::Platform;

    fn setup() -> (CtLogServer, Vec<Certificate>) {
        let server = CtLogServer::open(Platform::with_defaults()).unwrap();
        let certs = synthesize(50, 11);
        for c in &certs {
            server.submit(c).unwrap();
        }
        (server, certs)
    }

    #[test]
    fn current_certificate_is_valid() {
        let (server, certs) = setup();
        let auditor = LogAuditor::new(&server);
        // Use a hostname whose latest submission is certs[i] itself.
        let latest = server.lookup(&certs[10].hostname).unwrap().unwrap().certificate;
        assert_eq!(auditor.audit(&latest).unwrap(), AuditVerdict::Valid);
    }

    #[test]
    fn unknown_hostname_not_in_log() {
        let (server, mut certs) = setup();
        let auditor = LogAuditor::new(&server);
        certs[0].hostname = "unknown.example.test".into();
        assert_eq!(auditor.audit(&certs[0]).unwrap(), AuditVerdict::NotInLog);
    }

    #[test]
    fn superseded_certificate_is_flagged() {
        let (server, certs) = setup();
        let old = server.lookup(&certs[5].hostname).unwrap().unwrap().certificate;
        let mut newer = old.clone();
        newer.serial = 777_777;
        server.submit(&newer).unwrap();
        let auditor = LogAuditor::new(&server);
        assert_eq!(
            auditor.audit(&old).unwrap(),
            AuditVerdict::Mismatch { logged_serial: 777_777 },
            "stale certificate must be rejected (freshness)"
        );
    }

    #[test]
    fn revoked_certificate_not_in_log() {
        let (server, certs) = setup();
        let current = server.lookup(&certs[3].hostname).unwrap().unwrap().certificate;
        server.revoke(&certs[3].hostname).unwrap();
        let auditor = LogAuditor::new(&server);
        assert_eq!(auditor.audit(&current).unwrap(), AuditVerdict::NotInLog);
    }
}
