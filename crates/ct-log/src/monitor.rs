//! Domain monitors: incremental mis-issuance detection (§5.7).
//!
//! "The eLSM scheme can enable lightweight log monitors who only download
//! the certificates of their own domain names, resulting in low and
//! sublinear bandwidth." A monitor tracks one domain, polls the log with
//! authenticated range queries, and reports certificates it has not
//! approved — without ever downloading the whole log.

use std::collections::HashSet;

use elsm_crypto::Digest;

use crate::cert::Certificate;
use crate::server::CtLogServer;
use elsm::ElsmError;

/// A certificate the monitor flagged as unexpected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisissuanceAlert {
    /// The offending certificate.
    pub certificate: Certificate,
    /// When it entered the log.
    pub log_ts: u64,
}

/// A per-domain log monitor with incremental polling.
#[derive(Debug)]
pub struct DomainMonitor {
    domain: String,
    approved_spki: HashSet<Digest>,
    last_seen_ts: u64,
    certificates_downloaded: u64,
}

impl DomainMonitor {
    /// Creates a monitor for `domain`, trusting the given SPKI hashes.
    pub fn new(domain: &str, approved_spki: impl IntoIterator<Item = Digest>) -> Self {
        DomainMonitor {
            domain: domain.to_string(),
            approved_spki: approved_spki.into_iter().collect(),
            last_seen_ts: 0,
            certificates_downloaded: 0,
        }
    }

    /// The monitored domain.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Total certificates ever downloaded (the sublinear-bandwidth claim:
    /// this counts only the monitored domain's certs).
    pub fn certificates_downloaded(&self) -> u64 {
        self.certificates_downloaded
    }

    /// Approves an additional key (e.g. after a planned rotation).
    pub fn approve(&mut self, spki: Digest) {
        self.approved_spki.insert(spki);
    }

    /// Polls the log: fetches this domain's certificates newer than the
    /// last poll and returns alerts for any issued with unapproved keys.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] if the log's (complete) range
    /// answer fails authentication — a monitor must not silently accept a
    /// censored listing.
    pub fn poll(&mut self, server: &CtLogServer) -> Result<Vec<MisissuanceAlert>, ElsmError> {
        let all = server.domain_certificates(&self.domain)?;
        let mut alerts = Vec::new();
        let mut max_ts = self.last_seen_ts;
        for logged in all {
            if logged.log_ts <= self.last_seen_ts {
                continue; // already reviewed in an earlier poll
            }
            self.certificates_downloaded += 1;
            max_ts = max_ts.max(logged.log_ts);
            if !self.approved_spki.contains(&logged.certificate.spki_hash) {
                alerts.push(MisissuanceAlert {
                    log_ts: logged.log_ts,
                    certificate: logged.certificate,
                });
            }
        }
        self.last_seen_ts = max_ts;
        Ok(alerts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::synthesize;
    use sgx_sim::Platform;

    fn make_cert(hostname: &str, spki: Digest, serial: u64) -> Certificate {
        Certificate {
            hostname: hostname.to_string(),
            issuer: "Test CA".into(),
            serial,
            not_before: 0,
            not_after: 1,
            spki_hash: spki,
        }
    }

    #[test]
    fn approved_certs_raise_no_alerts() {
        let server = CtLogServer::open(Platform::with_defaults()).unwrap();
        let spki = elsm_crypto::sha256(b"our key");
        server.submit(&make_cert("www.mysite.org", spki, 1)).unwrap();
        server.submit(&make_cert("mail.mysite.org", spki, 2)).unwrap();
        let mut monitor = DomainMonitor::new("mysite.org", [spki]);
        assert!(monitor.poll(&server).unwrap().is_empty());
        assert_eq!(monitor.certificates_downloaded(), 2);
    }

    #[test]
    fn misissued_cert_detected() {
        let server = CtLogServer::open(Platform::with_defaults()).unwrap();
        let ours = elsm_crypto::sha256(b"our key");
        let attacker = elsm_crypto::sha256(b"attacker key");
        server.submit(&make_cert("www.mysite.org", ours, 1)).unwrap();
        server.submit(&make_cert("evil.mysite.org", attacker, 2)).unwrap();
        let mut monitor = DomainMonitor::new("mysite.org", [ours]);
        let alerts = monitor.poll(&server).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].certificate.hostname, "evil.mysite.org");
    }

    #[test]
    fn polling_is_incremental() {
        let server = CtLogServer::open(Platform::with_defaults()).unwrap();
        let ours = elsm_crypto::sha256(b"our key");
        server.submit(&make_cert("a.mysite.org", ours, 1)).unwrap();
        let mut monitor = DomainMonitor::new("mysite.org", [ours]);
        monitor.poll(&server).unwrap();
        assert_eq!(monitor.certificates_downloaded(), 1);
        // Nothing new: no additional downloads.
        monitor.poll(&server).unwrap();
        assert_eq!(monitor.certificates_downloaded(), 1);
        // A new submission is picked up exactly once.
        server.submit(&make_cert("b.mysite.org", ours, 2)).unwrap();
        monitor.poll(&server).unwrap();
        assert_eq!(monitor.certificates_downloaded(), 2);
    }

    #[test]
    fn bandwidth_is_sublinear_in_log_size() {
        let server = CtLogServer::open(Platform::with_defaults()).unwrap();
        // A big log of unrelated certificates...
        for c in synthesize(400, 5) {
            server.submit(&c).unwrap();
        }
        // ...and two certs for our domain.
        let ours = elsm_crypto::sha256(b"our key");
        server.submit(&make_cert("www.tiny.org", ours, 1)).unwrap();
        server.submit(&make_cert("api.tiny.org", ours, 2)).unwrap();
        let mut monitor = DomainMonitor::new("tiny.org", [ours]);
        monitor.poll(&server).unwrap();
        assert_eq!(
            monitor.certificates_downloaded(),
            2,
            "monitor must download only its own domain's certificates"
        );
    }
}
