//! # ct-log
//!
//! The paper's §5.7 case study: a trustworthy certificate-transparency log
//! server built on the eLSM-P2 authenticated key-value store.
//!
//! * [`CtLogServer`] — logs certificates keyed by reversed hostname,
//!   serving authenticated lookups (inclusion + freshness: revoked or
//!   superseded certificates cannot be replayed) and complete per-domain
//!   listings;
//! * [`LogAuditor`] — the browser-side client validating handshake
//!   certificates against the log;
//! * [`DomainMonitor`] — a lightweight monitor that polls only its own
//!   domain's certificates (sublinear bandwidth) and alerts on
//!   mis-issuance;
//! * [`ForkMonitor`] — an auditor over a *replicated* deployment,
//!   cross-checking the per-epoch commitment announcements published by
//!   the primary and its replicas and flagging any divergence (split-view
//!   detection through replication).
//!
//! Certificates are synthesized ([`cert::synthesize`]) since the Google
//! Pilot log feed the paper downloads from is unavailable offline — see
//! DESIGN.md §1.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod cert;
pub mod fork;
pub mod monitor;
pub mod security;
pub mod server;

pub use auditor::{AuditVerdict, LogAuditor};
pub use cert::{synthesize, Certificate};
pub use fork::{ForkEvidence, ForkMonitor};
pub use monitor::{DomainMonitor, MisissuanceAlert};
pub use security::{SecurityAuditor, FORK_DETECTED};
pub use server::{CtLogServer, LoggedCertificate};
