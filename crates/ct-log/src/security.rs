//! One audit stream for the whole deployment.
//!
//! The store side reports every [`VerificationFailure`] it detects as a
//! structured [`AuditEvent`] on its telemetry registry; the
//! transparency side detects split views from signed per-epoch
//! [`Announcement`]s via [`ForkMonitor`]. [`SecurityAuditor`] joins the
//! two: it registers itself as a [`telemetry::AuditSink`] on the
//! deployment's registry (so every verification failure from every
//! node, shard and replica lands in its incident log) and it feeds
//! relayed announcements into its own fork monitor, converting any
//! [`ForkEvidence`] back into an audit event on the same registry. An
//! external auditor therefore consumes **one** ordered stream —
//! tampered records, stale replicas, fenced-out primaries and forked
//! histories all arrive as the same structured record.
//!
//! [`VerificationFailure`]: elsm::VerificationFailure

use std::sync::Arc;

use elsm::replication::{Announcement, SessionKey};
use parking_lot::Mutex;
use sgx_sim::Platform;
use telemetry::{AuditEvent, AuditSink, Telemetry};

use crate::fork::{ForkEvidence, ForkMonitor};

/// The audit-event kind emitted when the fork monitor flags a split
/// view (every other kind on the stream is a `VerificationFailure`
/// variant name).
pub const FORK_DETECTED: &str = "ForkDetected";

#[derive(Debug)]
struct AuditorState {
    monitor: ForkMonitor,
    incidents: Vec<AuditEvent>,
}

/// A deployment-wide security auditor: a [`ForkMonitor`] that also
/// subscribes to the telemetry audit stream (see the module docs).
#[derive(Debug)]
pub struct SecurityAuditor {
    telemetry: Telemetry,
    state: Mutex<AuditorState>,
}

impl SecurityAuditor {
    /// Builds an auditor for the group signing under `key`, charging
    /// announcement verification to `platform`, and registers it as an
    /// audit sink on `telemetry` — which must be the **root** registry
    /// the deployment's stores were opened with, so every scoped node
    /// reports into it.
    pub fn attach(telemetry: &Telemetry, platform: Arc<Platform>, key: SessionKey) -> Arc<Self> {
        let auditor = Arc::new(SecurityAuditor {
            telemetry: telemetry.clone(),
            state: Mutex::new(AuditorState {
                monitor: ForkMonitor::new(platform, key),
                incidents: Vec::new(),
            }),
        });
        telemetry.add_audit_sink(auditor.clone());
        auditor
    }

    /// Feeds one relayed announcement into the fork monitor. When the
    /// observation produces [`ForkEvidence`], the evidence is also
    /// recorded on the registry as a [`FORK_DETECTED`] audit event (and
    /// thus lands in this auditor's own incident log), carrying the
    /// forked epoch and the conflicting announcer as replica context.
    pub fn observe_announcement(&self, announcement: &Announcement) -> Option<ForkEvidence> {
        // The state lock must drop before the event is recorded: the
        // registry calls straight back into `on_audit`.
        let evidence = self.state.lock().monitor.observe(announcement);
        if let Some(e) = &evidence {
            self.telemetry.audit(
                AuditEvent::new(FORK_DETECTED, "ct_log.fork_monitor")
                    .detail(format!(
                        "epoch {}: node {} announced {} but node {} announced {}",
                        e.epoch,
                        e.first.0,
                        e.first.1.short_hex(),
                        e.conflicting.0,
                        e.conflicting.1.short_hex(),
                    ))
                    .epoch(e.epoch)
                    .replica(e.conflicting.0),
            );
        }
        evidence
    }

    /// Every incident consumed so far, in stream order: verification
    /// failures reported by the stores plus fork evidence from the
    /// monitor.
    pub fn incidents(&self) -> Vec<AuditEvent> {
        self.state.lock().incidents.clone()
    }

    /// Number of incidents consumed.
    pub fn incident_count(&self) -> usize {
        self.state.lock().incidents.len()
    }

    /// All fork evidence recorded by the wrapped monitor.
    pub fn fork_evidence(&self) -> Vec<ForkEvidence> {
        self.state.lock().monitor.divergences().to_vec()
    }

    /// Announcements rejected as forgeries by the wrapped monitor.
    pub fn rejected_announcements(&self) -> u64 {
        self.state.lock().monitor.rejected()
    }

    /// Epochs with at least one verified announcement.
    pub fn epochs_observed(&self) -> usize {
        self.state.lock().monitor.epochs_observed()
    }
}

impl AuditSink for SecurityAuditor {
    fn on_audit(&self, event: &AuditEvent) {
        self.state.lock().incidents.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsm::{AuthenticatedKv, P2Options};
    use elsm_replica::{ReplicationGroup, ReplicationOptions};

    /// The unified-stream test: a store-side verification failure and a
    /// monitor-side fork land in the same incident log, in order.
    #[test]
    fn verification_failures_and_forks_share_one_stream() {
        let registry = Telemetry::new();
        let group = ReplicationGroup::open(
            Platform::with_defaults(),
            P2Options { telemetry: registry.clone(), ..Default::default() },
            ReplicationOptions { replicas: 1, ..Default::default() },
        )
        .unwrap();
        let auditor = SecurityAuditor::attach(
            &registry,
            Platform::with_defaults(),
            group.session_key().clone(),
        );
        for i in 0..100u32 {
            group.put(format!("cert{i:03}").as_bytes(), b"hash").unwrap();
        }
        group.flush().unwrap();

        let primary = group.primary_store();
        let epoch = primary.db().current_epoch();
        group.with_replica(0, |r| {
            let token = r.get(b"cert000").unwrap().1;
            assert_eq!(token.lag_epochs(), 0, "healthy replica is caught up");
        });

        // Monitor side: an equivocating primary signs a different
        // commitment digest for the same epoch.
        let honest = elsm::replication::Announcement::sign(
            primary.platform(),
            primary.trusted(),
            0,
            epoch,
            group.session_key(),
        )
        .expect("current epoch is published");
        assert!(auditor.observe_announcement(&honest).is_none());
        let equivocation = elsm::replication::Announcement::sign_digest(
            primary.platform(),
            0,
            epoch,
            elsm_crypto::sha256(b"the other history"),
            group.session_key(),
        );
        let evidence = auditor.observe_announcement(&equivocation).expect("fork flagged");
        assert_eq!(evidence.epoch, epoch);

        // Store side: the replica cross-checks the same announcement
        // against its replayed state, raises `ForkedPrimary`, and its
        // audit event lands on the same registry → same incident log.
        let refused = group.with_replica(0, |r| r.observe_announcement(&equivocation));
        assert!(refused.is_err(), "replica refuses the split view");
        assert_eq!(registry.audit_count("ForkedPrimary"), 1);

        // One stream: the fork event rode the registry back into the
        // auditor, alongside any store-side failures.
        assert_eq!(registry.audit_count(FORK_DETECTED), 1);
        assert_eq!(auditor.fork_evidence().len(), 1);
        let incidents = auditor.incidents();
        let fork = incidents.iter().find(|e| e.kind == FORK_DETECTED).expect("fork incident");
        assert_eq!(fork.epoch, Some(epoch));
        assert_eq!(fork.replica, Some(0));
        assert_eq!(auditor.incident_count(), registry.audit_total() as usize);
    }
}
