//! The eLSM-backed certificate-transparency log server (§5.7).
//!
//! "The hostname of a certificate is used as the data key and the
//! certificate itself (more specifically, the hash of the certificate) is
//! the data value." — here the value is the full encoded certificate (its
//! hash is derivable), which lets monitors audit content, not just
//! presence.

use std::sync::Arc;

use elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options};
use sgx_sim::Platform;

use crate::cert::{reverse_hostname, Certificate};

/// A certificate returned with its inclusion evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedCertificate {
    /// The certificate.
    pub certificate: Certificate,
    /// Log timestamp (submission order).
    pub log_ts: u64,
    /// Size of the verified inclusion proof in bytes.
    pub proof_bytes: usize,
}

/// The trustworthy CT log server: an eLSM-P2 store keyed by reversed
/// hostnames.
///
/// # Examples
///
/// ```
/// use ct_log::{CtLogServer, cert::synthesize};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), elsm::ElsmError> {
/// let server = CtLogServer::open(Platform::with_defaults())?;
/// let cert = synthesize(1, 42).pop().unwrap();
/// server.submit(&cert)?;
/// let logged = server.lookup(&cert.hostname)?.expect("included");
/// assert_eq!(logged.certificate, cert);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CtLogServer {
    store: ElsmP2,
}

impl CtLogServer {
    /// Opens a log server with default sizing.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open(platform: Arc<Platform>) -> Result<Self, ElsmError> {
        Self::open_with(platform, P2Options::default())
    }

    /// Opens with explicit store options.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open_with(platform: Arc<Platform>, options: P2Options) -> Result<Self, ElsmError> {
        Ok(CtLogServer { store: ElsmP2::open(platform, options)? })
    }

    /// The underlying authenticated store.
    pub fn store(&self) -> &ElsmP2 {
        &self.store
    }

    /// Logs a newly issued certificate (a CA submission). Returns the log
    /// timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn submit(&self, cert: &Certificate) -> Result<u64, ElsmError> {
        self.store.put(&cert.log_key(), &cert.encode())
    }

    /// Revokes a hostname's current certificate.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn revoke(&self, hostname: &str) -> Result<u64, ElsmError> {
        self.store.delete(reverse_hostname(hostname).as_bytes())
    }

    /// Authenticated lookup of the *current* certificate for `hostname`
    /// (freshness matters: "returning a revoked certificate may connect a
    /// user to an impersonator").
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] if the host's answer fails the
    /// inclusion/freshness checks.
    pub fn lookup(&self, hostname: &str) -> Result<Option<LoggedCertificate>, ElsmError> {
        let key = reverse_hostname(hostname).into_bytes();
        match self.store.get(&key)? {
            Some(rec) => {
                let certificate = Certificate::decode(rec.value()).ok_or(
                    elsm::VerificationFailure::ForgedRecord {
                        level: 0,
                        source: merkle::VerifyError::BadAuditPath,
                    },
                )?;
                Ok(Some(LoggedCertificate {
                    certificate,
                    log_ts: rec.ts(),
                    proof_bytes: rec.proof_bytes(),
                }))
            }
            None => Ok(None),
        }
    }

    /// Authenticated, complete listing of every certificate under
    /// `domain` (e.g. `example.org` covers `*.example.org`) — the
    /// lightweight, sublinear-bandwidth monitor query the paper
    /// highlights.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] on completeness violations.
    pub fn domain_certificates(&self, domain: &str) -> Result<Vec<LoggedCertificate>, ElsmError> {
        let prefix = reverse_hostname(domain);
        let from = prefix.clone().into_bytes();
        let mut to = prefix.into_bytes();
        to.push(0xff);
        let mut out = Vec::new();
        for rec in self.store.scan(&from, &to)? {
            if let Some(certificate) = Certificate::decode(rec.value()) {
                out.push(LoggedCertificate {
                    certificate,
                    log_ts: rec.ts(),
                    proof_bytes: rec.proof_bytes(),
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::synthesize;

    fn server_with(n: usize) -> (CtLogServer, Vec<Certificate>) {
        let server = CtLogServer::open_with(
            Platform::with_defaults(),
            P2Options { write_buffer_bytes: 8 * 1024, ..P2Options::default() },
        )
        .unwrap();
        let certs = synthesize(n, 77);
        for c in &certs {
            server.submit(c).unwrap();
        }
        (server, certs)
    }

    #[test]
    fn submit_and_lookup() {
        let (server, certs) = server_with(100);
        let sample = &certs[13];
        let logged = server.lookup(&sample.hostname).unwrap().expect("included");
        // The newest certificate for that hostname wins.
        assert_eq!(logged.certificate.hostname, sample.hostname);
        assert!(server.lookup("absent.nowhere.test").unwrap().is_none());
    }

    #[test]
    fn reissue_supersedes() {
        let (server, certs) = server_with(10);
        let mut newer = certs[0].clone();
        newer.serial = 9999;
        server.submit(&newer).unwrap();
        let logged = server.lookup(&newer.hostname).unwrap().unwrap();
        assert_eq!(logged.certificate.serial, 9999, "lookup must return the freshest cert");
    }

    #[test]
    fn revocation_hides_certificate() {
        let (server, certs) = server_with(10);
        server.revoke(&certs[0].hostname).unwrap();
        assert!(server.lookup(&certs[0].hostname).unwrap().is_none());
    }

    #[test]
    fn domain_listing_is_complete() {
        let (server, certs) = server_with(200);
        server.store().db().flush().unwrap();
        // Pick a domain present in the data.
        let domain = {
            let h = &certs[0].hostname;
            h.split_once('.').unwrap().1.to_string()
        };
        let listed = server.domain_certificates(&domain).unwrap();
        let expected: std::collections::HashSet<String> = certs
            .iter()
            .filter(|c| c.hostname.ends_with(&domain))
            .map(|c| c.hostname.clone())
            .collect();
        let got: std::collections::HashSet<String> =
            listed.iter().map(|l| l.certificate.hostname.clone()).collect();
        assert_eq!(got, expected, "domain scan must be complete");
    }

    #[test]
    fn lookups_carry_proofs_after_flush() {
        let (server, certs) = server_with(300);
        server.store().db().flush().unwrap();
        let logged = server.lookup(&certs[250].hostname).unwrap().unwrap();
        assert!(logged.proof_bytes > 0, "disk-resident answers carry Merkle proofs");
    }
}
