//! Synthetic certificates.
//!
//! The paper's case study (§5.7) downloads certificates from Google's
//! Pilot CT log; that feed is unavailable offline, so this module
//! synthesizes certificates with the same schema the prototype stores:
//! hostname as the data key, certificate (hash) as the value. DESIGN.md §1
//! records the substitution.

use elsm_crypto::{sha256_concat, Digest};

/// A (synthetic) X.509-like certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject hostname (e.g. `mail.example.org`).
    pub hostname: String,
    /// Issuing CA name.
    pub issuer: String,
    /// Serial number, unique per issuer.
    pub serial: u64,
    /// Validity start (seconds since epoch).
    pub not_before: u64,
    /// Validity end.
    pub not_after: u64,
    /// Hash of the subject public key.
    pub spki_hash: Digest,
}

impl Certificate {
    /// The log key: labels reversed (`org.example.mail`) so one domain's
    /// certificates form a contiguous key range for monitors.
    pub fn log_key(&self) -> Vec<u8> {
        reverse_hostname(&self.hostname).into_bytes()
    }

    /// Canonical encoding stored as the log value.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put = |out: &mut Vec<u8>, s: &[u8]| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        };
        put(&mut out, self.hostname.as_bytes());
        put(&mut out, self.issuer.as_bytes());
        out.extend_from_slice(&self.serial.to_le_bytes());
        out.extend_from_slice(&self.not_before.to_le_bytes());
        out.extend_from_slice(&self.not_after.to_le_bytes());
        out.extend_from_slice(self.spki_hash.as_bytes());
        out
    }

    /// Parses an encoded certificate.
    pub fn decode(buf: &[u8]) -> Option<Certificate> {
        let mut pos = 0usize;
        let mut get = |buf: &[u8]| -> Option<Vec<u8>> {
            let len = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let out = buf.get(pos..pos + len)?.to_vec();
            pos += len;
            Some(out)
        };
        let hostname = String::from_utf8(get(buf)?).ok()?;
        let issuer = String::from_utf8(get(buf)?).ok()?;
        let serial = u64::from_le_bytes(buf.get(pos..pos + 8)?.try_into().ok()?);
        let not_before = u64::from_le_bytes(buf.get(pos + 8..pos + 16)?.try_into().ok()?);
        let not_after = u64::from_le_bytes(buf.get(pos + 16..pos + 24)?.try_into().ok()?);
        let mut spki = [0u8; 32];
        spki.copy_from_slice(buf.get(pos + 24..pos + 56)?);
        Some(Certificate {
            hostname,
            issuer,
            serial,
            not_before,
            not_after,
            spki_hash: Digest::from_bytes(spki),
        })
    }

    /// The certificate hash (what browsers pin and auditors check).
    pub fn cert_hash(&self) -> Digest {
        sha256_concat(&[&[0x0c], &self.encode()])
    }
}

/// Reverses hostname labels: `mail.example.org` → `org.example.mail`.
pub fn reverse_hostname(hostname: &str) -> String {
    hostname.split('.').rev().collect::<Vec<_>>().join(".")
}

/// Deterministically synthesizes `n` certificates across ~`n / 4` domains
/// with realistic issuers and validity windows.
pub fn synthesize(n: usize, seed: u64) -> Vec<Certificate> {
    const ISSUERS: [&str; 4] = ["Let's Encrypt R3", "DigiCert G2", "Sectigo RSA", "GTS CA 1C3"];
    const TLDS: [&str; 3] = ["org", "com", "net"];
    const SUBS: [&str; 4] = ["www", "mail", "api", "cdn"];
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    (0..n)
        .map(|i| {
            let domain_id = next() as usize % (n / 4 + 1);
            let hostname = format!(
                "{}.domain{:05}.{}",
                SUBS[next() as usize % SUBS.len()],
                domain_id,
                TLDS[domain_id % TLDS.len()],
            );
            let not_before = 1_700_000_000 + (next() % 10_000_000);
            Certificate {
                hostname: hostname.clone(),
                issuer: ISSUERS[next() as usize % ISSUERS.len()].to_string(),
                serial: i as u64 + 1,
                not_before,
                not_after: not_before + 90 * 86_400,
                spki_hash: sha256_concat(&[b"spki", hostname.as_bytes(), &next().to_le_bytes()]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let certs = synthesize(20, 1);
        for c in &certs {
            assert_eq!(Certificate::decode(&c.encode()).unwrap(), *c);
        }
    }

    #[test]
    fn log_keys_group_domains() {
        let a = Certificate { hostname: "mail.example.org".into(), ..synthesize(1, 2)[0].clone() };
        let b = Certificate { hostname: "www.example.org".into(), ..a.clone() };
        let c = Certificate { hostname: "www.other.com".into(), ..a.clone() };
        let (ka, kb, kc) = (a.log_key(), b.log_key(), c.log_key());
        assert!(ka.starts_with(b"org.example."));
        assert!(kb.starts_with(b"org.example."));
        assert!(!kc.starts_with(b"org.example."));
    }

    #[test]
    fn reverse_hostname_works() {
        assert_eq!(reverse_hostname("a.b.c"), "c.b.a");
        assert_eq!(reverse_hostname("single"), "single");
    }

    #[test]
    fn cert_hash_binds_content() {
        let c = synthesize(1, 3).pop().unwrap();
        let mut c2 = c.clone();
        c2.serial += 1;
        assert_ne!(c.cert_hash(), c2.cert_hash());
    }

    #[test]
    fn synthesis_is_deterministic_and_diverse() {
        let a = synthesize(100, 9);
        let b = synthesize(100, 9);
        assert_eq!(a, b);
        let issuers: std::collections::HashSet<_> = a.iter().map(|c| &c.issuer).collect();
        assert!(issuers.len() > 1);
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = synthesize(1, 5).pop().unwrap();
        let bytes = c.encode();
        assert!(Certificate::decode(&bytes[..bytes.len() - 1]).is_none());
    }
}
