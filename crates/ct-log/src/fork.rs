//! Fork detection across a replicated log deployment.
//!
//! A replicated eLSM service (the log server behind a
//! `ReplicationGroup`) gives auditors a new, powerful consistency probe:
//! every node's enclave signs per-epoch commitment announcements
//! ([`Announcement`]), and because a replica *recomputes* its
//! commitments by replaying the primary's WAL stream, an honest
//! deployment's announcements for one epoch are **identical across
//! nodes**. A primary that shows different histories to different
//! observers (the classic split-view attack on transparency logs) must
//! eventually sign two different commitment digests for one epoch — and
//! any auditor that gossips announcements catches it.
//!
//! [`ForkMonitor`] is that auditor: it collects announcements relayed
//! from any node over any path (the signatures make the relay
//! untrusted), rejects forgeries, and flags every epoch where two nodes
//! — or one node twice — commit to different states.

use std::collections::BTreeMap;

use elsm::replication::{Announcement, SessionKey};
use elsm_crypto::Digest;
use sgx_sim::Platform;

/// Evidence of a fork: one epoch, two verifiably signed, different
/// commitment digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkEvidence {
    /// The epoch both announcements name.
    pub epoch: u64,
    /// The first observed (node, commitments) pair.
    pub first: (u32, Digest),
    /// The conflicting (node, commitments) pair.
    pub conflicting: (u32, Digest),
}

/// An auditor cross-checking per-epoch commitments published by the
/// primary and the replicas of one replication group.
#[derive(Debug)]
pub struct ForkMonitor {
    platform: std::sync::Arc<Platform>,
    key: SessionKey,
    /// First verified announcement seen per epoch, plus every observed
    /// announcer (diagnostics).
    seen: BTreeMap<u64, (u32, Digest)>,
    divergences: Vec<ForkEvidence>,
    rejected: u64,
}

impl ForkMonitor {
    /// A monitor for the group signing under `key`, charging its
    /// verification work to `platform`.
    pub fn new(platform: std::sync::Arc<Platform>, key: SessionKey) -> Self {
        ForkMonitor { platform, key, seen: BTreeMap::new(), divergences: Vec::new(), rejected: 0 }
    }

    /// Feeds one relayed announcement. Forgeries are rejected (counted,
    /// not recorded); a verified announcement that conflicts with an
    /// earlier one for the same epoch is recorded as [`ForkEvidence`].
    /// Returns the evidence when this observation created it.
    pub fn observe(&mut self, announcement: &Announcement) -> Option<ForkEvidence> {
        if !announcement.verify(&self.platform, &self.key) {
            self.rejected += 1;
            return None;
        }
        let entry = (announcement.node, announcement.commitments);
        match self.seen.get(&announcement.epoch) {
            None => {
                self.seen.insert(announcement.epoch, entry);
                None
            }
            Some(first) if first.1 == entry.1 => None,
            Some(first) => {
                let evidence =
                    ForkEvidence { epoch: announcement.epoch, first: *first, conflicting: entry };
                self.divergences.push(evidence.clone());
                Some(evidence)
            }
        }
    }

    /// All divergences recorded so far.
    pub fn divergences(&self) -> &[ForkEvidence] {
        &self.divergences
    }

    /// Number of epochs with at least one verified announcement.
    pub fn epochs_observed(&self) -> usize {
        self.seen.len()
    }

    /// Announcements rejected as forgeries.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsm::AuthenticatedKv;
    use elsm_replica::{ReplicationGroup, ReplicationOptions};

    /// The fork-detection smoke test: an honest replicated deployment's
    /// per-epoch commitments agree across primary and replicas; a forged
    /// or equivocating announcement is flagged.
    #[test]
    fn honest_group_agrees_and_forks_are_flagged() {
        let group = ReplicationGroup::open(
            Platform::with_defaults(),
            Default::default(),
            ReplicationOptions { replicas: 2, ..Default::default() },
        )
        .unwrap();
        for i in 0..200u32 {
            group.put(format!("cert{i:04}").as_bytes(), b"hash").unwrap();
        }
        group.flush().unwrap();

        let mut monitor = ForkMonitor::new(Platform::with_defaults(), group.session_key().clone());
        // Primary and both replicas publish their current-epoch
        // commitments; the replicas recomputed theirs from replay, so
        // all three must agree.
        let primary = group.primary_store();
        let epoch = primary.db().current_epoch();
        let primary_announcement = elsm::replication::Announcement::sign(
            primary.platform(),
            primary.trusted(),
            0,
            epoch,
            group.session_key(),
        )
        .expect("current epoch is published");
        assert!(monitor.observe(&primary_announcement).is_none());
        for i in 0..2 {
            let a = group.with_replica(i, |r| r.announce_current()).expect("replica epoch");
            assert_eq!(a.epoch, epoch, "replica {i} replayed to the same epoch");
            assert!(monitor.observe(&a).is_none(), "honest replica {i} must not diverge");
        }
        assert!(monitor.divergences().is_empty());
        assert_eq!(monitor.epochs_observed(), 1);

        // A forged announcement (bad signature) is rejected, not recorded.
        let mut forged = primary_announcement.clone();
        forged.commitments = elsm_crypto::sha256(b"fabricated state");
        assert!(monitor.observe(&forged).is_none());
        assert_eq!(monitor.rejected(), 1);

        // An equivocating primary is a signing oracle over the group
        // key: it signs a *different* commitment digest for the same
        // epoch (a split view shown to some other observer). The
        // cross-check flags it.
        let equivocation = elsm::replication::Announcement::sign_digest(
            primary.platform(),
            0,
            epoch,
            elsm_crypto::sha256(b"the other history"),
            group.session_key(),
        );
        let evidence =
            monitor.observe(&equivocation).expect("divergent commitments must be flagged");
        assert_eq!(evidence.epoch, epoch);
        assert_ne!(evidence.first.1, evidence.conflicting.1);
        assert_eq!(monitor.divergences().len(), 1);
    }
}
