//! # sim-disk
//!
//! Storage substrate for the eLSM reproduction: a simulated block device
//! with a seek/sequential cost model ([`SimDisk`]), an append-only
//! filesystem whose files hold real bytes ([`SimFs`]), the placement-aware
//! LRU read buffer at the centre of the paper's design space
//! ([`BufferCache`]), and untrusted-memory file mappings ([`MmapFile`]).
//!
//! All costs are charged through [`sgx_sim::Platform`], so the same code
//! paths produce the latencies reported by the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::Platform;
//! use sim_disk::{Placement, BufferCache, SimDisk, SimFs};
//! use bytes::Bytes;
//!
//! let platform = Platform::with_defaults();
//! let fs = SimFs::new(SimDisk::new(platform.clone()));
//! let f = fs.create("000001.sst").unwrap();
//! f.append(b"block bytes");
//!
//! // eLSM-P2 places the read buffer in untrusted memory:
//! let cache: BufferCache<(u64, u64)> =
//!     BufferCache::new(platform, Placement::Untrusted, 4096, 1 << 20);
//! cache.insert((1, 0), Bytes::from_static(b"block bytes"));
//! assert!(cache.get(&(1, 0)).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod disk;
pub mod fs;
pub mod mmap;

pub use cache::{BufferCache, Placement};
pub use disk::SimDisk;
pub use fs::{FsError, FsSnapshot, SimFile, SimFs};
pub use mmap::MmapFile;
