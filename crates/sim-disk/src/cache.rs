//! The read buffer (block cache) with configurable placement.
//!
//! This is the data structure whose *placement* is the paper's central
//! design decision (Table 1, Figure 2): eLSM-P1 keeps it inside the enclave
//! (suffering an extra boundary copy on fill and EPC paging once it grows
//! past 128 MB), while eLSM-P2 keeps it in untrusted memory (plain DRAM
//! costs, verified by Merkle proofs instead of hardware).
//!
//! The cache stores real block bytes with LRU eviction; every access routes
//! its cost through [`sgx_sim::Platform`] according to the placement.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use sgx_sim::{EnclaveRegion, Platform};

/// Where the cache memory lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Untrusted host DRAM (eLSM-P2): cheap access, needs software
    /// authentication.
    Untrusted,
    /// Enclave memory (eLSM-P1): hardware-protected, pays cross-boundary
    /// copies on fill and EPC paging beyond the protected-memory size.
    Enclave,
}

#[derive(Debug)]
struct Entry {
    data: Bytes,
    slot: usize,
    lru_tick: u64,
}

#[derive(Debug)]
struct CacheState<K> {
    map: HashMap<K, Entry>,
    lru: BTreeMap<u64, K>,
    tick: u64,
    free_slots: Vec<usize>,
    hits: u64,
    misses: u64,
}

/// An LRU block cache with placement-aware cost charging.
///
/// `K` identifies a cached unit (typically `(file_id, block_offset)`).
/// Entries must not exceed `slot_size` bytes.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use sgx_sim::Platform;
/// use sim_disk::{BufferCache, Placement};
///
/// let p = Platform::with_defaults();
/// let cache: BufferCache<u64> = BufferCache::new(p, Placement::Untrusted, 4096, 16 * 4096);
/// cache.insert(7, Bytes::from_static(b"block"));
/// assert_eq!(cache.get(&7).unwrap(), Bytes::from_static(b"block"));
/// assert!(cache.get(&8).is_none());
/// ```
#[derive(Debug)]
pub struct BufferCache<K> {
    platform: Arc<Platform>,
    placement: Placement,
    slot_size: usize,
    capacity_slots: usize,
    region: Option<EnclaveRegion>,
    state: Mutex<CacheState<K>>,
}

impl<K: Hash + Eq + Clone> BufferCache<K> {
    /// Creates a cache of `capacity_bytes`, divided into `slot_size` slots.
    ///
    /// # Panics
    ///
    /// Panics if `slot_size` is zero or larger than `capacity_bytes`.
    pub fn new(
        platform: Arc<Platform>,
        placement: Placement,
        slot_size: usize,
        capacity_bytes: usize,
    ) -> Self {
        assert!(slot_size > 0, "slot size must be positive");
        assert!(capacity_bytes >= slot_size, "capacity must hold at least one slot");
        let capacity_slots = capacity_bytes / slot_size;
        let region = match placement {
            // Enclave region: slot storage plus a bookkeeping tail (hash
            // map + LRU list nodes), which real caches scatter across the
            // heap — under EPC pressure those metadata pages fault too.
            Placement::Enclave => {
                let bookkeeping = (capacity_slots * slot_size / 16).max(4 * 4096);
                Some(platform.enclave_alloc(capacity_slots * slot_size + bookkeeping))
            }
            Placement::Untrusted => None,
        };
        BufferCache {
            platform,
            placement,
            slot_size,
            capacity_slots,
            region,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                free_slots: (0..capacity_slots).rev().collect(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The configured placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_slots * self.slot_size
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) counters over the cache's lifetime.
    pub fn hit_stats(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.hits, s.misses)
    }

    /// Looks up `key`, charging the placement-appropriate access cost on a
    /// hit. A miss charges nothing (the caller then pays for the real read
    /// and calls [`BufferCache::insert`]).
    pub fn get(&self, key: &K) -> Option<Bytes> {
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        let Some(entry) = state.map.get_mut(key) else {
            state.misses += 1;
            return None;
        };
        let old_tick = entry.lru_tick;
        entry.lru_tick = tick;
        let data = entry.data.clone();
        let slot = entry.slot;
        state.lru.remove(&old_tick);
        state.lru.insert(tick, key.clone());
        state.hits += 1;
        drop(state);
        self.charge_access(slot, data.len());
        Some(data)
    }

    /// Inserts (or replaces) `key`, evicting LRU entries if the cache is
    /// full. Charges the placement-appropriate fill cost.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the slot size.
    pub fn insert(&self, key: K, data: Bytes) {
        assert!(
            data.len() <= self.slot_size,
            "entry of {} bytes exceeds slot size {}",
            data.len(),
            self.slot_size
        );
        let len = data.len();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(old) = state.map.remove(&key) {
            state.lru.remove(&old.lru_tick);
            state.free_slots.push(old.slot);
        }
        let slot = loop {
            if let Some(slot) = state.free_slots.pop() {
                break slot;
            }
            // Evict the least recently used entry.
            let (&victim_tick, victim_key) =
                state.lru.iter().next().map(|(t, k)| (t, k.clone())).expect("full cache has LRU");
            state.lru.remove(&victim_tick);
            let victim = state.map.remove(&victim_key).expect("LRU entry present in map");
            state.free_slots.push(victim.slot);
        };
        state.map.insert(key.clone(), Entry { data, slot, lru_tick: tick });
        state.lru.insert(tick, key);
        drop(state);
        self.charge_fill(slot, len);
    }

    fn charge_access(&self, slot: usize, len: usize) {
        match self.placement {
            Placement::Untrusted => self.platform.dram_access(len),
            Placement::Enclave => {
                let region = self.region.as_ref().expect("enclave cache has region");
                self.platform.enclave_touch(region, slot * self.slot_size, len);
                self.touch_bookkeeping(slot);
            }
        }
    }

    /// Touches the cache's own metadata (hash-map bucket + LRU node) for
    /// `slot`; these live in the bookkeeping tail of the enclave region.
    fn touch_bookkeeping(&self, slot: usize) {
        let region = self.region.as_ref().expect("enclave cache has region");
        let data_bytes = self.capacity_slots * self.slot_size;
        let tail = region.len() - data_bytes;
        if tail == 0 {
            return;
        }
        let h = (slot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for i in 0..2u64 {
            let off = data_bytes
                + ((h.rotate_left(17 * i as u32)) as usize % tail.max(64)).min(tail - 32);
            self.platform.enclave_touch(region, off, 32);
        }
    }

    fn charge_fill(&self, slot: usize, len: usize) {
        match self.placement {
            Placement::Untrusted => self.platform.dram_access(len),
            Placement::Enclave => {
                // Data produced outside (disk read) is copied across the
                // boundary into enclave memory — the extra copy (S1) of
                // §4.2 — and the destination pages must be EPC-resident.
                self.platform.cross_copy(len);
                let region = self.region.as_ref().expect("enclave cache has region");
                self.platform.enclave_touch(region, slot * self.slot_size, len);
                self.touch_bookkeeping(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::{CostModel, PAGE_SIZE};

    fn platform_with_epc(pages: usize) -> Arc<Platform> {
        Platform::new(CostModel::paper_defaults().with_epc_bytes(pages * PAGE_SIZE))
    }

    fn bytes(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn insert_get_round_trip() {
        let cache: BufferCache<u32> =
            BufferCache::new(Platform::with_defaults(), Placement::Untrusted, 4096, 8 * 4096);
        cache.insert(1, bytes(100, 0xaa));
        assert_eq!(cache.get(&1).unwrap(), bytes(100, 0xaa));
    }

    #[test]
    fn miss_returns_none_and_counts() {
        let cache: BufferCache<u32> =
            BufferCache::new(Platform::with_defaults(), Placement::Untrusted, 4096, 8 * 4096);
        assert!(cache.get(&9).is_none());
        assert_eq!(cache.hit_stats(), (0, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache: BufferCache<u32> =
            BufferCache::new(Platform::with_defaults(), Placement::Untrusted, 4096, 2 * 4096);
        cache.insert(1, bytes(10, 1));
        cache.insert(2, bytes(10, 2));
        cache.get(&1); // 2 becomes LRU
        cache.insert(3, bytes(10, 3));
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&3).is_some());
    }

    #[test]
    fn replace_same_key_keeps_capacity() {
        let cache: BufferCache<u32> =
            BufferCache::new(Platform::with_defaults(), Placement::Untrusted, 4096, 2 * 4096);
        cache.insert(1, bytes(10, 1));
        cache.insert(1, bytes(20, 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&1).unwrap(), bytes(20, 2));
    }

    #[test]
    #[should_panic(expected = "exceeds slot size")]
    fn oversized_entry_panics() {
        let cache: BufferCache<u32> =
            BufferCache::new(Platform::with_defaults(), Placement::Untrusted, 64, 128);
        cache.insert(1, bytes(65, 0));
    }

    #[test]
    fn enclave_placement_charges_cross_copy() {
        let p = platform_with_epc(64);
        let cache: BufferCache<u32> =
            BufferCache::new(p.clone(), Placement::Enclave, 4096, 8 * 4096);
        cache.insert(1, bytes(4096, 0));
        assert_eq!(p.stats().cross_copy_bytes, 4096);
        assert!(p.stats().epc_page_ins >= 1);
    }

    #[test]
    fn untrusted_placement_never_touches_epc() {
        let p = platform_with_epc(64);
        let cache: BufferCache<u32> =
            BufferCache::new(p.clone(), Placement::Untrusted, 4096, 8 * 4096);
        for i in 0..100u32 {
            cache.insert(i, bytes(4096, i as u8));
            cache.get(&i);
        }
        assert_eq!(p.stats().epc_page_ins, 0);
        assert_eq!(p.stats().cross_copy_bytes, 0);
    }

    #[test]
    fn enclave_cache_larger_than_epc_thrashes() {
        // EPC of 8 pages, cache of 64 pages: random hits must fault.
        let p = platform_with_epc(8);
        let cache: BufferCache<u32> =
            BufferCache::new(p.clone(), Placement::Enclave, PAGE_SIZE, 64 * PAGE_SIZE);
        for i in 0..64u32 {
            cache.insert(i, bytes(PAGE_SIZE, i as u8));
        }
        let ins_before = p.stats().epc_page_ins;
        for round in 0..4 {
            for i in 0..64u32 {
                cache.get(&i);
            }
            let _ = round;
        }
        let faults = p.stats().epc_page_ins - ins_before;
        assert!(faults > 200, "expected thrashing on hits, got {faults}");
    }

    #[test]
    fn enclave_cache_within_epc_is_quiet_after_warmup() {
        let p = platform_with_epc(128);
        let cache: BufferCache<u32> =
            BufferCache::new(p.clone(), Placement::Enclave, PAGE_SIZE, 16 * PAGE_SIZE);
        for i in 0..16u32 {
            cache.insert(i, bytes(PAGE_SIZE, 0));
        }
        let ins_before = p.stats().epc_page_ins;
        for i in 0..16u32 {
            cache.get(&i);
        }
        assert_eq!(p.stats().epc_page_ins, ins_before, "hits within EPC must not fault");
    }

    #[test]
    fn hit_ratio_tracks_accesses() {
        let cache: BufferCache<u32> =
            BufferCache::new(Platform::with_defaults(), Placement::Untrusted, 4096, 4 * 4096);
        cache.insert(1, bytes(1, 0));
        cache.get(&1);
        cache.get(&2);
        cache.get(&1);
        assert_eq!(cache.hit_stats(), (2, 1));
    }
}
