//! Simulated filesystem over [`crate::disk::SimDisk`].
//!
//! Files hold their real bytes (SSTables are actually built and parsed),
//! while reads and writes charge the disk/DRAM cost model. A per-file
//! *warm* flag models the OS page cache in untrusted memory: the paper's
//! experiments scan the dataset after loading "so that it is loaded in the
//! untrusted memory" (§6.1), after which reads are memory-speed. Figure 2
//! instead uses a dataset larger than memory, which the harness models by
//! capping the OS cache.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use sgx_sim::Platform;

use crate::disk::SimDisk;

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound(String),
    /// A file with this name already exists.
    AlreadyExists(String),
    /// Read past the end of the file.
    OutOfBounds {
        /// File name.
        name: String,
        /// Requested end offset.
        requested_end: usize,
        /// Actual file length.
        len: usize,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "file not found: {n}"),
            FsError::AlreadyExists(n) => write!(f, "file already exists: {n}"),
            FsError::OutOfBounds { name, requested_end, len } => {
                write!(f, "read past end of {name}: {requested_end} > {len}")
            }
        }
    }
}

impl std::error::Error for FsError {}

/// One extent of a file on the simulated disk.
#[derive(Debug, Clone, Copy)]
struct Extent {
    file_off: u64,
    disk_off: u64,
    len: u64,
}

/// A file in the simulated filesystem.
///
/// Append-only writes (as LSM stores produce) and random-access reads.
#[derive(Debug)]
pub struct SimFile {
    fs: Arc<SimFsInner>,
    name: RwLock<String>,
    data: RwLock<Vec<u8>>,
    extents: Mutex<Vec<Extent>>,
    warm: AtomicBool,
}

impl SimFile {
    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current name (may change through rename).
    pub fn name(&self) -> String {
        self.name.read().clone()
    }

    /// Whether the file's contents are resident in the untrusted OS page
    /// cache (reads cost DRAM instead of disk).
    pub fn is_warm(&self) -> bool {
        self.warm.load(Ordering::Relaxed)
    }

    /// Appends bytes, charging a sequential disk write.
    pub fn append(&self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let disk_off = self.fs.disk.allocate(bytes.len() as u64);
        let file_off = {
            let mut data = self.data.write();
            let off = data.len() as u64;
            data.extend_from_slice(bytes);
            off
        };
        self.extents.lock().push(Extent { file_off, disk_off, len: bytes.len() as u64 });
        self.fs.disk.write(disk_off, bytes.len());
        // Freshly written data sits in the page cache if there is room.
        self.fs.try_warm(self, bytes.len() as u64);
    }

    /// Reads `len` bytes at `offset`, charging DRAM (warm) or disk (cold).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::OutOfBounds`] when the range exceeds the file.
    pub fn read_at(&self, offset: usize, len: usize) -> Result<Bytes, FsError> {
        let data = self.data.read();
        let end = offset.checked_add(len).ok_or_else(|| FsError::OutOfBounds {
            name: self.name(),
            requested_end: usize::MAX,
            len: data.len(),
        })?;
        if end > data.len() {
            return Err(FsError::OutOfBounds {
                name: self.name(),
                requested_end: end,
                len: data.len(),
            });
        }
        if self.is_warm() {
            self.fs.platform.dram_access(len);
        } else {
            // Charge per covering extent: a read spanning extents written at
            // different times causes distinct disk accesses.
            let extents = self.extents.lock();
            for e in extents.iter() {
                let e_end = e.file_off + e.len;
                let r_start = offset as u64;
                let r_end = end as u64;
                if e.file_off < r_end && r_start < e_end {
                    let within = r_start.max(e.file_off) - e.file_off;
                    let take = r_end.min(e_end) - r_start.max(e.file_off);
                    self.fs.disk.read(e.disk_off + within, take as usize);
                }
            }
        }
        Ok(Bytes::copy_from_slice(&data[offset..end]))
    }

    /// Flips bits at `offset` (XOR with `mask`) without charging costs.
    ///
    /// This is the adversary/fault-injection hook: the untrusted host can
    /// rewrite any byte it stores. Security tests corrupt SSTables and
    /// WALs through this and assert the enclave detects it.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is past the end of the file.
    pub fn corrupt(&self, offset: usize, mask: u8) {
        let mut data = self.data.write();
        assert!(offset < data.len(), "corrupt offset out of range");
        data[offset] ^= mask;
    }

    /// Copies bytes without charging any cost; used by [`crate::mmap`],
    /// which does its own fault accounting.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::OutOfBounds`] when the range exceeds the file.
    pub fn peek(&self, offset: usize, len: usize) -> Result<Bytes, FsError> {
        let data = self.data.read();
        let end = offset.checked_add(len).filter(|&e| e <= data.len()).ok_or_else(|| {
            FsError::OutOfBounds {
                name: self.name(),
                requested_end: offset.saturating_add(len),
                len: data.len(),
            }
        })?;
        Ok(Bytes::copy_from_slice(&data[offset..end]))
    }

    /// The platform this file charges costs to.
    pub fn fs_platform(&self) -> &Arc<Platform> {
        &self.fs.platform
    }

    /// Marks the whole file resident in the OS page cache, charging one
    /// sequential scan (the paper's warm-up step).
    pub fn warm(&self) {
        if self.is_warm() {
            return;
        }
        let len = self.len() as u64;
        // The warm-up scan itself reads from disk once.
        let extents = self.extents.lock();
        for e in extents.iter() {
            self.fs.disk.read(e.disk_off, e.len as usize);
        }
        drop(extents);
        self.fs.try_warm(self, len);
    }
}

#[derive(Debug)]
struct SimFsInner {
    platform: Arc<Platform>,
    disk: Arc<SimDisk>,
    os_cache_limit: Mutex<u64>,
    os_cache_used: Mutex<u64>,
}

impl SimFsInner {
    fn try_warm(&self, file: &SimFile, added: u64) {
        if file.is_warm() {
            return;
        }
        let limit = *self.os_cache_limit.lock();
        let mut used = self.os_cache_used.lock();
        if *used + added <= limit {
            *used += added;
            file.warm.store(true, Ordering::Relaxed);
        }
    }
}

/// The simulated filesystem: named append-only files.
///
/// # Examples
///
/// ```
/// use sgx_sim::Platform;
/// use sim_disk::{SimDisk, SimFs};
///
/// let platform = Platform::with_defaults();
/// let fs = SimFs::new(SimDisk::new(platform));
/// let f = fs.create("wal.log").unwrap();
/// f.append(b"entry-1");
/// assert_eq!(&f.read_at(0, 7).unwrap()[..], b"entry-1");
/// ```
#[derive(Debug)]
pub struct SimFs {
    inner: Arc<SimFsInner>,
    files: RwLock<HashMap<String, Arc<SimFile>>>,
}

impl SimFs {
    /// Creates a filesystem on `disk` with an effectively unlimited OS page
    /// cache (everything written stays warm). Use
    /// [`SimFs::set_os_cache_limit`] to model memory pressure.
    pub fn new(disk: Arc<SimDisk>) -> Arc<Self> {
        let platform = disk.platform().clone();
        Arc::new(SimFs {
            inner: Arc::new(SimFsInner {
                platform,
                disk,
                os_cache_limit: Mutex::new(u64::MAX),
                os_cache_used: Mutex::new(0),
            }),
            files: RwLock::new(HashMap::new()),
        })
    }

    /// Limits the untrusted OS page cache to `bytes`. Files already warm
    /// stay warm; new warm-ups beyond the limit are refused (reads stay at
    /// disk cost).
    pub fn set_os_cache_limit(&self, bytes: u64) {
        *self.inner.os_cache_limit.lock() = bytes;
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if the name is taken.
    pub fn create(&self, name: &str) -> Result<Arc<SimFile>, FsError> {
        let mut files = self.files.write();
        if files.contains_key(name) {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let file = Arc::new(SimFile {
            fs: self.inner.clone(),
            name: RwLock::new(name.to_string()),
            data: RwLock::new(Vec::new()),
            extents: Mutex::new(Vec::new()),
            warm: AtomicBool::new(false),
        });
        files.insert(name.to_string(), file.clone());
        Ok(file)
    }

    /// Opens an existing file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn open(&self, name: &str) -> Result<Arc<SimFile>, FsError> {
        self.files.read().get(name).cloned().ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Deletes a file (its page-cache residency is released).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn delete(&self, name: &str) -> Result<(), FsError> {
        let file =
            self.files.write().remove(name).ok_or_else(|| FsError::NotFound(name.to_string()))?;
        if file.is_warm() {
            let mut used = self.inner.os_cache_used.lock();
            *used = used.saturating_sub(file.len() as u64);
        }
        Ok(())
    }

    /// Renames a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] / [`FsError::AlreadyExists`].
    pub fn rename(&self, old: &str, new: &str) -> Result<(), FsError> {
        let mut files = self.files.write();
        if files.contains_key(new) {
            return Err(FsError::AlreadyExists(new.to_string()));
        }
        let file = files.remove(old).ok_or_else(|| FsError::NotFound(old.to_string()))?;
        *file.name.write() = new.to_string();
        files.insert(new.to_string(), file);
        Ok(())
    }

    /// All file names, unsorted.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Sum of all file lengths.
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|f| f.len() as u64).sum()
    }

    /// Warms every file (the §6.1 dataset scan), subject to the cache limit.
    pub fn warm_all(&self) {
        let files: Vec<_> = self.files.read().values().cloned().collect();
        for f in files {
            f.warm();
        }
    }

    /// The platform used for charging.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.inner.platform
    }

    /// Captures the complete filesystem contents — the adversary's
    /// "old but authentic version" for rollback attacks (§5.6.1).
    pub fn snapshot(&self) -> FsSnapshot {
        let files = self.files.read();
        FsSnapshot {
            files: files.iter().map(|(name, f)| (name.clone(), f.data.read().clone())).collect(),
        }
    }

    /// Replaces the filesystem contents with a snapshot (no cost charged —
    /// the adversary works offline).
    pub fn restore(&self, snapshot: &FsSnapshot) {
        let mut files = self.files.write();
        files.clear();
        for (name, data) in &snapshot.files {
            let file = Arc::new(SimFile {
                fs: self.inner.clone(),
                name: RwLock::new(name.clone()),
                data: RwLock::new(data.clone()),
                extents: Mutex::new(Vec::new()),
                warm: AtomicBool::new(true),
            });
            files.insert(name.clone(), file);
        }
    }
}

/// A point-in-time copy of every file, used to mount rollback attacks.
#[derive(Debug, Clone)]
pub struct FsSnapshot {
    files: Vec<(String, Vec<u8>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::CostModel;

    fn fs() -> Arc<SimFs> {
        SimFs::new(SimDisk::new(Platform::new(CostModel::paper_defaults())))
    }

    #[test]
    fn create_write_read_round_trip() {
        let fs = fs();
        let f = fs.create("a").unwrap();
        f.append(b"hello ");
        f.append(b"world");
        assert_eq!(&f.read_at(0, 11).unwrap()[..], b"hello world");
        assert_eq!(&f.read_at(6, 5).unwrap()[..], b"world");
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = fs();
        fs.create("a").unwrap();
        assert!(matches!(fs.create("a"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn open_missing_rejected() {
        assert!(matches!(fs().open("nope"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let fs = fs();
        let f = fs.create("a").unwrap();
        f.append(b"abc");
        assert!(matches!(f.read_at(1, 5), Err(FsError::OutOfBounds { .. })));
    }

    #[test]
    fn rename_preserves_contents() {
        let fs = fs();
        let f = fs.create("old").unwrap();
        f.append(b"data");
        fs.rename("old", "new").unwrap();
        assert!(fs.open("old").is_err());
        let g = fs.open("new").unwrap();
        assert_eq!(&g.read_at(0, 4).unwrap()[..], b"data");
        assert_eq!(g.name(), "new");
    }

    #[test]
    fn rename_to_existing_rejected() {
        let fs = fs();
        fs.create("a").unwrap();
        fs.create("b").unwrap();
        assert!(matches!(fs.rename("a", "b"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn delete_removes_file() {
        let fs = fs();
        fs.create("a").unwrap();
        fs.delete("a").unwrap();
        assert!(fs.open("a").is_err());
        assert!(fs.delete("a").is_err());
    }

    #[test]
    fn warm_reads_cost_dram_not_disk() {
        let fs = fs();
        let f = fs.create("a").unwrap();
        f.append(&vec![0u8; 8192]);
        // Unlimited cache: file is warm right after writing.
        assert!(f.is_warm());
        let seeks_before = fs.platform().stats().disk_seeks;
        let dram_before = fs.platform().stats().dram_bytes;
        f.read_at(100, 1000).unwrap();
        assert_eq!(fs.platform().stats().disk_seeks, seeks_before);
        assert_eq!(fs.platform().stats().dram_bytes - dram_before, 1000);
    }

    #[test]
    fn cold_reads_hit_disk() {
        let fs = fs();
        fs.set_os_cache_limit(0);
        let f = fs.create("a").unwrap();
        f.append(&vec![0u8; 8192]);
        assert!(!f.is_warm());
        let bytes_before = fs.platform().stats().disk_bytes;
        f.read_at(0, 4096).unwrap();
        assert!(fs.platform().stats().disk_bytes > bytes_before);
    }

    #[test]
    fn cache_limit_respected() {
        let fs = fs();
        fs.set_os_cache_limit(10_000);
        let a = fs.create("a").unwrap();
        a.append(&vec![0u8; 8_000]);
        let b = fs.create("b").unwrap();
        b.append(&vec![0u8; 8_000]);
        assert!(a.is_warm());
        assert!(!b.is_warm(), "second file exceeds the cache limit");
        // Deleting the first frees room for the second.
        fs.delete("a").unwrap();
        b.warm();
        assert!(b.is_warm());
    }

    #[test]
    fn total_bytes_and_list() {
        let fs = fs();
        fs.create("a").unwrap().append(b"12345");
        fs.create("b").unwrap().append(b"123");
        assert_eq!(fs.total_bytes(), 8);
        let mut names = fs.list();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn interleaved_appends_cause_seeks() {
        let fs = fs();
        fs.set_os_cache_limit(0);
        let a = fs.create("a").unwrap();
        let b = fs.create("b").unwrap();
        a.append(&vec![1u8; 4096]);
        b.append(&vec![2u8; 4096]);
        a.append(&vec![3u8; 4096]);
        // Reading file a sequentially spans two discontiguous extents.
        let seeks_before = fs.platform().stats().disk_seeks;
        a.read_at(0, 8192).unwrap();
        assert!(fs.platform().stats().disk_seeks > seeks_before);
    }
}
