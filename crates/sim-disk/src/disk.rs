//! Simulated block device with a seek/sequential cost model.
//!
//! The device stores no bytes itself (files in [`crate::fs`] own their
//! contents); it models *time*: a read or write that is not sequential with
//! the previous access charges a seek, and every transfer charges
//! per-kilobyte time. This is what makes update-in-place digest structures
//! slow (random IO) and LSM writes fast (sequential IO), the contrast the
//! paper's §3.4 builds on.

use std::sync::Arc;

use parking_lot::Mutex;
use sgx_sim::Platform;

/// Simulated disk head position tracking.
#[derive(Debug)]
pub struct SimDisk {
    platform: Arc<Platform>,
    head: Mutex<u64>,
    /// Next free allocation offset (files are laid out append-only).
    alloc: Mutex<u64>,
}

impl SimDisk {
    /// Creates a disk charging through `platform`.
    pub fn new(platform: Arc<Platform>) -> Arc<Self> {
        Arc::new(SimDisk { platform, head: Mutex::new(0), alloc: Mutex::new(0) })
    }

    /// Reserves `len` bytes of disk space, returning its start offset.
    pub fn allocate(&self, len: u64) -> u64 {
        let mut alloc = self.alloc.lock();
        let start = *alloc;
        *alloc += len;
        start
    }

    /// Charges a read of `len` bytes at absolute `offset`.
    pub fn read(&self, offset: u64, len: usize) {
        self.transfer(offset, len);
    }

    /// Charges a write of `len` bytes at absolute `offset`.
    pub fn write(&self, offset: u64, len: usize) {
        self.transfer(offset, len);
    }

    fn transfer(&self, offset: u64, len: usize) {
        {
            let mut head = self.head.lock();
            if *head != offset {
                self.platform.charge_disk_seek();
            }
            *head = offset + len as u64;
        }
        self.platform.charge_disk_transfer(len);
    }

    /// The platform this disk charges to.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::CostModel;

    fn disk() -> Arc<SimDisk> {
        SimDisk::new(Platform::new(CostModel::paper_defaults()))
    }

    #[test]
    fn sequential_reads_seek_once() {
        let d = disk();
        d.read(0, 4096);
        d.read(4096, 4096);
        d.read(8192, 4096);
        assert_eq!(d.platform().stats().disk_seeks, 0, "head starts at 0");
        assert_eq!(d.platform().stats().disk_bytes, 3 * 4096);
    }

    #[test]
    fn random_reads_seek_each_time() {
        let d = disk();
        d.read(0, 4096);
        d.read(1_000_000, 4096);
        d.read(0, 4096);
        assert_eq!(d.platform().stats().disk_seeks, 2);
    }

    #[test]
    fn seek_dominates_small_random_reads() {
        let d = disk();
        let t0 = d.platform().clock().now_ns();
        d.read(500_000, 128);
        let dt = d.platform().clock().now_ns() - t0;
        assert!(dt >= d.platform().cost().disk_seek_ns);
    }

    #[test]
    fn allocate_is_monotone() {
        let d = disk();
        let a = d.allocate(100);
        let b = d.allocate(200);
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(d.allocate(1), 300);
    }
}
