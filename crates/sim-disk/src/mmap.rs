//! Memory-mapped file views (eLSM-P2's mmap read path, §5.5.1).
//!
//! On the mmap path, the enclave maps an SSTable into *untrusted* memory on
//! open and then dereferences it directly — no user-space buffer, no OCall
//! per read, no extra copy. Reads of warm pages cost plain DRAM; cold pages
//! fault once at disk cost (major page fault) and stay warm.
//!
//! eLSM-P1 cannot use this path: mmap'd pages live outside the enclave, and
//! P1 keeps all data inside (§6.3).

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::fs::{FsError, SimFile};

const MMAP_PAGE: usize = 4096;

/// A read-only memory map of a [`SimFile`] in untrusted memory.
///
/// # Examples
///
/// ```
/// use sgx_sim::Platform;
/// use sim_disk::{MmapFile, SimDisk, SimFs};
///
/// let fs = SimFs::new(SimDisk::new(Platform::with_defaults()));
/// let f = fs.create("table.sst").unwrap();
/// f.append(b"sorted records ...");
/// let map = MmapFile::map(f);
/// assert_eq!(&map.read(0, 6).unwrap()[..], b"sorted");
/// ```
#[derive(Debug)]
pub struct MmapFile {
    file: Arc<SimFile>,
    /// Pages already faulted in (monotone; mmaps here are read-only and
    /// short-lived relative to memory pressure).
    resident: Mutex<Vec<bool>>,
}

impl MmapFile {
    /// Maps `file`. The mapping itself is cheap (page-table setup only).
    pub fn map(file: Arc<SimFile>) -> Arc<Self> {
        let pages = file.len().div_ceil(MMAP_PAGE);
        Arc::new(MmapFile { file, resident: Mutex::new(vec![false; pages]) })
    }

    /// Length of the mapped file at map time.
    pub fn len(&self) -> usize {
        self.resident.lock().len() * MMAP_PAGE
    }

    /// Whether the mapping covers no pages.
    pub fn is_empty(&self) -> bool {
        self.resident.lock().is_empty()
    }

    /// Reads `len` bytes at `offset` through the mapping.
    ///
    /// Warm file: pure DRAM cost. Cold pages: one major fault each (disk
    /// read), after which they stay resident.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::OutOfBounds`] past the end of the file.
    pub fn read(&self, offset: usize, len: usize) -> Result<Bytes, FsError> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        if self.file.is_warm() {
            // read_at charges DRAM for warm files.
            return self.file.read_at(offset, len);
        }
        // Major-fault cold pages once.
        let first = offset / MMAP_PAGE;
        let last = (offset + len - 1) / MMAP_PAGE;
        {
            let mut resident = self.resident.lock();
            for page in first..=last.min(resident.len().saturating_sub(1)) {
                if !resident[page] {
                    resident[page] = true;
                    // One disk read per cold page, charged through the file.
                    let start = page * MMAP_PAGE;
                    let take = MMAP_PAGE.min(self.file.len().saturating_sub(start));
                    let _ = self.file.read_at(start, take)?;
                }
            }
        }
        // The access itself is a DRAM read of untrusted memory.
        self.file.fs_platform().dram_access(len);
        self.copy_range(offset, len)
    }

    fn copy_range(&self, offset: usize, len: usize) -> Result<Bytes, FsError> {
        // Bypass read_at's cost charging: faults above already paid, and
        // warm-file DRAM is charged by the caller. We still need the bytes.
        self.file.peek(offset, len)
    }

    /// The underlying file.
    pub fn file(&self) -> &Arc<SimFile> {
        &self.file
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use crate::fs::SimFs;
    use sgx_sim::{CostModel, Platform};

    fn cold_fs() -> Arc<SimFs> {
        let fs = SimFs::new(SimDisk::new(Platform::new(CostModel::paper_defaults())));
        fs.set_os_cache_limit(0);
        fs
    }

    #[test]
    fn warm_mmap_reads_are_dram_only() {
        let fs = SimFs::new(SimDisk::new(Platform::with_defaults()));
        let f = fs.create("t").unwrap();
        f.append(&vec![7u8; 16 * 1024]);
        assert!(f.is_warm());
        let map = MmapFile::map(f);
        let seeks = fs.platform().stats().disk_seeks;
        let got = map.read(5000, 100).unwrap();
        assert_eq!(got, Bytes::from(vec![7u8; 100]));
        assert_eq!(fs.platform().stats().disk_seeks, seeks);
    }

    #[test]
    fn cold_pages_fault_once() {
        let fs = cold_fs();
        let f = fs.create("t").unwrap();
        f.append(&vec![1u8; 16 * 1024]);
        let map = MmapFile::map(f);
        let bytes0 = fs.platform().stats().disk_bytes;
        map.read(0, 100).unwrap();
        let bytes1 = fs.platform().stats().disk_bytes;
        assert!(bytes1 > bytes0, "first access major-faults");
        map.read(0, 100).unwrap();
        let bytes2 = fs.platform().stats().disk_bytes;
        assert_eq!(bytes2, bytes1, "second access is resident");
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let fs = cold_fs();
        let f = fs.create("t").unwrap();
        f.append(b"abc");
        let map = MmapFile::map(f);
        assert!(map.read(0, 10).is_err());
    }

    #[test]
    fn reads_return_correct_bytes() {
        let fs = cold_fs();
        let f = fs.create("t").unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        f.append(&data);
        let map = MmapFile::map(f);
        let got = map.read(5000, 100).unwrap();
        assert_eq!(&got[..], &data[5000..5100]);
    }
}
