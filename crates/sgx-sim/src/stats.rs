//! Platform-wide event counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters for every chargeable platform event.
///
/// Useful both for assertions in tests ("this GET must not page") and for
/// the benchmark harness to explain *why* a configuration is slow.
#[derive(Debug, Default)]
pub struct PlatformStats {
    /// Number of ECalls (world switches into the enclave).
    pub ecalls: AtomicU64,
    /// Number of OCalls (world switches out of the enclave).
    pub ocalls: AtomicU64,
    /// EPC pages faulted in.
    pub epc_page_ins: AtomicU64,
    /// EPC pages evicted (written back).
    pub epc_page_outs: AtomicU64,
    /// Bytes copied across the enclave boundary.
    pub cross_copy_bytes: AtomicU64,
    /// Bytes copied/accessed inside the enclave.
    pub enclave_copy_bytes: AtomicU64,
    /// Bytes accessed in untrusted DRAM.
    pub dram_bytes: AtomicU64,
    /// Disk seeks (random-access penalties charged).
    pub disk_seeks: AtomicU64,
    /// Bytes transferred from/to the simulated disk.
    pub disk_bytes: AtomicU64,
    /// SHA-256 blocks hashed (charged through the platform).
    pub hash_blocks: AtomicU64,
    /// Trusted monotonic-counter writes.
    pub counter_writes: AtomicU64,
}

impl PlatformStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            epc_page_ins: self.epc_page_ins.load(Ordering::Relaxed),
            epc_page_outs: self.epc_page_outs.load(Ordering::Relaxed),
            cross_copy_bytes: self.cross_copy_bytes.load(Ordering::Relaxed),
            enclave_copy_bytes: self.enclave_copy_bytes.load(Ordering::Relaxed),
            dram_bytes: self.dram_bytes.load(Ordering::Relaxed),
            disk_seeks: self.disk_seeks.load(Ordering::Relaxed),
            disk_bytes: self.disk_bytes.load(Ordering::Relaxed),
            hash_blocks: self.hash_blocks.load(Ordering::Relaxed),
            counter_writes: self.counter_writes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PlatformStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub ecalls: u64,
    pub ocalls: u64,
    pub epc_page_ins: u64,
    pub epc_page_outs: u64,
    pub cross_copy_bytes: u64,
    pub enclave_copy_bytes: u64,
    pub dram_bytes: u64,
    pub disk_seeks: u64,
    pub disk_bytes: u64,
    pub hash_blocks: u64,
    pub counter_writes: u64,
}

impl StatsSnapshot {
    /// Per-field difference `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            ecalls: self.ecalls.saturating_sub(earlier.ecalls),
            ocalls: self.ocalls.saturating_sub(earlier.ocalls),
            epc_page_ins: self.epc_page_ins.saturating_sub(earlier.epc_page_ins),
            epc_page_outs: self.epc_page_outs.saturating_sub(earlier.epc_page_outs),
            cross_copy_bytes: self.cross_copy_bytes.saturating_sub(earlier.cross_copy_bytes),
            enclave_copy_bytes: self.enclave_copy_bytes.saturating_sub(earlier.enclave_copy_bytes),
            dram_bytes: self.dram_bytes.saturating_sub(earlier.dram_bytes),
            disk_seeks: self.disk_seeks.saturating_sub(earlier.disk_seeks),
            disk_bytes: self.disk_bytes.saturating_sub(earlier.disk_bytes),
            hash_blocks: self.hash_blocks.saturating_sub(earlier.hash_blocks),
            counter_writes: self.counter_writes.saturating_sub(earlier.counter_writes),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ecalls={} ocalls={} page_ins={} page_outs={} cross_kb={} dram_kb={} seeks={} disk_kb={} hash_blocks={}",
            self.ecalls,
            self.ocalls,
            self.epc_page_ins,
            self.epc_page_outs,
            self.cross_copy_bytes / 1024,
            self.dram_bytes / 1024,
            self.disk_seeks,
            self.disk_bytes / 1024,
            self.hash_blocks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = PlatformStats::new();
        PlatformStats::add(&s.ecalls, 3);
        let a = s.snapshot();
        PlatformStats::add(&s.ecalls, 2);
        PlatformStats::add(&s.disk_seeks, 1);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.ecalls, 2);
        assert_eq!(d.disk_seeks, 1);
        assert_eq!(d.ocalls, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = PlatformStats::new().snapshot();
        assert!(format!("{s}").contains("ecalls=0"));
    }
}
