//! Virtual time.
//!
//! Every latency number in the reproduction comes from this clock, advanced
//! explicitly by the cost model (disk transfers, EPC page faults, world
//! switches, hashing). Running on virtual time makes the benchmarks
//! deterministic and lets GB-scale experiments finish in seconds while still
//! exercising the real data-structure code paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing virtual clock counting nanoseconds.
///
/// Shared via [`Arc`]; all methods are lock-free.
///
/// # Examples
///
/// ```
/// use sgx_sim::Clock;
///
/// let clock = Clock::new();
/// clock.advance_ns(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// assert_eq!(clock.now_us(), 1.5);
/// ```
#[derive(Debug, Default)]
pub struct Clock {
    ns: AtomicU64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Clock { ns: AtomicU64::new(0) })
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Current virtual time in (fractional) microseconds.
    pub fn now_us(&self) -> f64 {
        self.now_ns() as f64 / 1_000.0
    }

    /// Starts a stopwatch at the current virtual time.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch { start_ns: self.now_ns() }
    }
}

/// Measures elapsed virtual time between two points.
///
/// # Examples
///
/// ```
/// use sgx_sim::Clock;
///
/// let clock = Clock::new();
/// let sw = clock.stopwatch();
/// clock.advance_ns(250);
/// assert_eq!(sw.elapsed_ns(&clock), 250);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Elapsed virtual nanoseconds since the stopwatch was started.
    pub fn elapsed_ns(&self, clock: &Clock) -> u64 {
        clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Elapsed virtual microseconds since the stopwatch was started.
    pub fn elapsed_us(&self, clock: &Clock) -> f64 {
        self.elapsed_ns(clock) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now_ns(), 0);
    }

    #[test]
    fn advances() {
        let c = Clock::new();
        c.advance_ns(10);
        c.advance_ns(32);
        assert_eq!(c.now_ns(), 42);
    }

    #[test]
    fn stopwatch_measures_interval() {
        let c = Clock::new();
        c.advance_ns(100);
        let sw = c.stopwatch();
        c.advance_ns(50);
        assert_eq!(sw.elapsed_ns(&c), 50);
        assert!((sw.elapsed_us(&c) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn concurrent_advances_all_counted() {
        let c = Clock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.advance_ns(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4000);
    }
}
