//! # sgx-sim
//!
//! A software simulation of an Intel SGX platform for the eLSM reproduction
//! ("Authenticated Key-Value Stores with Hardware Enclaves", Tang et al.,
//! MIDDLEWARE 2021).
//!
//! The paper's evaluation machine has SGX hardware; this environment does
//! not. Instead of stubbing the enclave out, this crate models the exact
//! mechanisms the paper's performance results hinge on:
//!
//! * **EPC paging** ([`epc`], [`Platform::enclave_touch`]): enclave memory
//!   beyond the 128 MB Enclave Page Cache faults with CLOCK replacement,
//!   charging realistic page-in/page-out costs — this produces the
//!   in-enclave-buffer blow-up of Figures 2, 5 and 6.
//! * **World switches** ([`Platform::ecall`]/[`Platform::ocall`]): every
//!   enclave transition charges a fixed cost and is counted.
//! * **Memory traffic**: copies across the boundary are ~3× ordinary DRAM
//!   (MEE encryption), reproducing the "extra copy" penalty (S1 in §4.2).
//! * **Disk**: seek + sequential-transfer charging for the simulated drive.
//! * **Trusted monotonic counters** ([`MonotonicCounter`]): slow hardware
//!   writes with state that survives rollback attacks (§5.6.1).
//! * **Sealing** ([`Sealer`]): measurement-bound AEAD for data stored in
//!   the untrusted world (eLSM-P1's file-granularity protection).
//!
//! Everything runs on a virtual [`Clock`], so benchmarks are deterministic
//! and GB-scale workloads execute in seconds. See `DESIGN.md` §1 for the
//! substitution argument.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::{CostModel, Platform};
//!
//! // An enclave working set larger than the EPC thrashes:
//! let p = Platform::new(CostModel::paper_defaults().with_epc_bytes(8 * 4096));
//! let big = p.enclave_alloc(64 * 4096);
//! for _ in 0..3 {
//!     p.enclave_touch(&big, 0, big.len());
//! }
//! assert!(p.stats().epc_page_outs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod clock;
pub mod cost;
pub mod counter;
pub mod epc;
pub mod platform;
pub mod seal;
pub mod serial;
pub mod stats;

pub use attrib::{
    current_world, enclave_scope, host_scope, thread_charges, ThreadCharges, TimeSplit, World,
    WorldScope,
};
pub use clock::{Clock, Stopwatch};
pub use cost::{CostModel, PAGE_SIZE};
pub use counter::{BufferedCounter, FencedState, FencingCounter, MonotonicCounter};
pub use epc::{EpcState, PageId, TouchOutcome};
pub use platform::{EnclaveRegion, Platform};
pub use seal::{SealError, SealedBlob, Sealer};
pub use serial::{SerialClass, SerialSection, SERIAL_CLASSES};
pub use stats::{PlatformStats, StatsSnapshot};
