//! The simulated platform: one untrusted host plus one enclave.
//!
//! [`Platform`] bundles the virtual [`Clock`], the [`CostModel`], the EPC
//! residency state and the event counters. Every other crate in the
//! workspace charges its work through these methods, so all latencies and
//! statistics are produced in one place.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::attrib::{self, Attribution, TimeSplit};
use crate::clock::Clock;
use crate::cost::{CostModel, PAGE_SIZE};
use crate::epc::{EpcState, PageId};
use crate::serial::{SerialClass, SerialSection, SERIAL_CLASSES};
use crate::stats::{PlatformStats, StatsSnapshot};

/// A handle to one enclave memory allocation.
///
/// Obtained from [`Platform::enclave_alloc`]; pass it back to
/// [`Platform::enclave_touch`] to model reads/writes of that memory and to
/// [`Platform::enclave_free`] when the allocation dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveRegion {
    id: u64,
    len: usize,
}

impl EnclaveRegion {
    /// Size of the allocation in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Region identifier (unique per platform).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// The simulated SGX machine shared by all components.
///
/// Cheap to clone through [`Arc`]; thread-safe throughout.
///
/// # Examples
///
/// ```
/// use sgx_sim::{CostModel, Platform};
///
/// let p = Platform::new(CostModel::paper_defaults());
/// let region = p.enclave_alloc(64 * 1024);
/// p.enclave_touch(&region, 0, 4096); // faults one page in
/// assert_eq!(p.stats().epc_page_ins, 1);
/// ```
#[derive(Debug)]
pub struct Platform {
    clock: Arc<Clock>,
    cost: CostModel,
    stats: PlatformStats,
    epc: Mutex<EpcState>,
    next_region: AtomicU64,
    enclave_alloc_bytes: AtomicU64,
    serial_ns: [AtomicU64; SERIAL_CLASSES],
    /// Virtual time by world: `[enclave, host, boundary]` (see
    /// [`TimeSplit`]).
    world_ns: [AtomicU64; 3],
}

impl Platform {
    /// Creates a platform with the given cost model.
    pub fn new(cost: CostModel) -> Arc<Self> {
        let epc = EpcState::new(cost.epc_pages().max(1));
        Arc::new(Platform {
            clock: Clock::new(),
            cost,
            stats: PlatformStats::new(),
            epc: Mutex::new(epc),
            next_region: AtomicU64::new(1),
            enclave_alloc_bytes: AtomicU64::new(0),
            serial_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            world_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// Creates a platform with [`CostModel::paper_defaults`].
    pub fn with_defaults() -> Arc<Self> {
        Self::new(CostModel::paper_defaults())
    }

    /// The platform's virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshot of the event counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Advances virtual time by a raw amount (used by substrates that have
    /// costs not covered by a dedicated charge method).
    pub fn advance(&self, ns: u64) {
        self.tick(ns);
    }

    /// Advances the clock, attributing the time to any serial sections open
    /// on the calling thread and to the thread's current world.
    fn tick(&self, ns: u64) {
        self.tick_attr(ns, Attribution::CurrentWorld);
    }

    /// [`Self::tick`] with an explicit world attribution. Every charge
    /// method funnels through here.
    fn tick_attr(&self, ns: u64, attr: Attribution) {
        self.clock.advance_ns(ns);
        let mask = crate::serial::active_mask();
        if mask != 0 {
            for (i, slot) in self.serial_ns.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    slot.fetch_add(ns, Ordering::Relaxed);
                }
            }
        }
        let bucket = attrib::note_time(ns, attr);
        self.world_ns[bucket].fetch_add(ns, Ordering::Relaxed);
    }

    /// The platform's virtual time split into enclave / host / boundary
    /// buckets. The three buckets sum to the total time this platform has
    /// charged.
    pub fn time_split(&self) -> TimeSplit {
        TimeSplit {
            enclave_ns: self.world_ns[0].load(Ordering::Relaxed),
            host_ns: self.world_ns[1].load(Ordering::Relaxed),
            boundary_ns: self.world_ns[2].load(Ordering::Relaxed),
        }
    }

    /// Opens a critical section of `class`: until the returned guard drops,
    /// all virtual time charged by this thread is also accumulated as
    /// serial time of that class (read back via [`Platform::serial_ns`]).
    pub fn serial_section(&self, class: SerialClass) -> SerialSection {
        SerialSection::enter(class)
    }

    /// Cumulative virtual nanoseconds charged inside `class` sections.
    pub fn serial_ns(&self, class: SerialClass) -> u64 {
        self.serial_ns[class as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all per-class serial accumulators.
    pub fn serial_snapshot(&self) -> [u64; SERIAL_CLASSES] {
        std::array::from_fn(|i| self.serial_ns[i].load(Ordering::Relaxed))
    }

    // ----- world switches ---------------------------------------------

    /// Charges one ECall (host → enclave switch) and runs `f` "inside":
    /// virtual time charged by `f` on this thread is attributed to the
    /// enclave until it returns.
    pub fn ecall<T>(&self, f: impl FnOnce() -> T) -> T {
        PlatformStats::add(&self.stats.ecalls, 1);
        attrib::note_transition(1, 0);
        self.tick_attr(self.cost.ecall_ns, Attribution::Boundary);
        let _world = attrib::enclave_scope();
        f()
    }

    /// Charges one ECall carrying `payload_bytes` of arguments and runs `f`
    /// "inside": one fixed transition cost plus per-byte marshalling (the
    /// argument copy crosses the enclave boundary through the MEE).
    ///
    /// This is how a *batch* ECall must be charged: the transition is paid
    /// once however many records ride along, while marshalling scales with
    /// the payload — a flat [`Platform::ecall`] would make a 1000-record
    /// batch as cheap to pass as a 1-record one.
    pub fn ecall_with_payload<T>(&self, payload_bytes: usize, f: impl FnOnce() -> T) -> T {
        PlatformStats::add(&self.stats.ecalls, 1);
        attrib::note_transition(1, 0);
        self.tick_attr(self.cost.ecall_ns, Attribution::Boundary);
        if payload_bytes > 0 {
            self.cross_copy(payload_bytes);
        }
        let _world = attrib::enclave_scope();
        f()
    }

    /// Charges one OCall (enclave → host switch) and runs `f` "outside":
    /// virtual time charged by `f` on this thread is attributed to the
    /// host until it returns.
    pub fn ocall<T>(&self, f: impl FnOnce() -> T) -> T {
        PlatformStats::add(&self.stats.ocalls, 1);
        attrib::note_transition(0, 1);
        self.tick_attr(self.cost.ocall_ns, Attribution::Boundary);
        let _world = attrib::host_scope();
        f()
    }

    // ----- memory traffic ----------------------------------------------

    /// Charges a copy of `len` bytes across the enclave boundary.
    pub fn cross_copy(&self, len: usize) {
        PlatformStats::add(&self.stats.cross_copy_bytes, len as u64);
        attrib::note_cross_bytes(len as u64);
        self.tick_attr(
            CostModel::copy_cost(self.cost.cross_copy_ns_per_kb, len),
            Attribution::Boundary,
        );
    }

    /// Charges an access of `len` bytes in ordinary untrusted DRAM.
    pub fn dram_access(&self, len: usize) {
        PlatformStats::add(&self.stats.dram_bytes, len as u64);
        self.tick(CostModel::copy_cost(self.cost.dram_ns_per_kb, len));
    }

    /// Charges hashing of `len` bytes (SHA-256) on the virtual clock.
    pub fn charge_hash(&self, len: usize) {
        PlatformStats::add(&self.stats.hash_blocks, (len / 64 + 1) as u64);
        self.tick(self.cost.hash_cost(len));
    }

    // ----- disk ----------------------------------------------------------

    /// Charges one random-access (seek) penalty on the simulated disk.
    pub fn charge_disk_seek(&self) {
        PlatformStats::add(&self.stats.disk_seeks, 1);
        self.tick(self.cost.disk_seek_ns);
    }

    /// Charges a sequential transfer of `len` bytes on the simulated disk.
    pub fn charge_disk_transfer(&self, len: usize) {
        PlatformStats::add(&self.stats.disk_bytes, len as u64);
        self.tick(CostModel::copy_cost(self.cost.disk_ns_per_kb, len));
    }

    /// Charges the fixed per-operation bookkeeping cost.
    pub fn charge_op_base(&self) {
        self.tick(self.cost.op_base_ns);
    }

    // ----- trusted counter ----------------------------------------------

    /// Charges one trusted monotonic-counter write.
    pub fn charge_counter_write(&self) {
        PlatformStats::add(&self.stats.counter_writes, 1);
        self.tick(self.cost.counter_write_ns);
    }

    /// Charges one trusted monotonic-counter read.
    pub fn charge_counter_read(&self) {
        self.tick(self.cost.counter_read_ns);
    }

    // ----- enclave memory -------------------------------------------------

    /// Allocates `len` bytes of enclave virtual memory.
    ///
    /// Allocation itself is cheap; the cost comes from touching the pages
    /// ([`Platform::enclave_touch`]) once the working set exceeds the EPC.
    pub fn enclave_alloc(&self, len: usize) -> EnclaveRegion {
        let id = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.enclave_alloc_bytes.fetch_add(len as u64, Ordering::Relaxed);
        EnclaveRegion { id, len }
    }

    /// Frees an enclave allocation, dropping its EPC residency.
    pub fn enclave_free(&self, region: EnclaveRegion) {
        self.enclave_alloc_bytes.fetch_sub(region.len as u64, Ordering::Relaxed);
        self.epc.lock().evict_region(region.id);
    }

    /// Total enclave virtual memory currently allocated.
    pub fn enclave_allocated_bytes(&self) -> u64 {
        self.enclave_alloc_bytes.load(Ordering::Relaxed)
    }

    /// Models the enclave reading/writing `len` bytes at `offset` within
    /// `region`: touches every covered EPC page (charging page-ins/outs as
    /// needed) and charges the in-enclave copy cost.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the allocation (the simulated equivalent
    /// of an enclave segfault).
    pub fn enclave_touch(&self, region: &EnclaveRegion, offset: usize, len: usize) {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= region.len),
            "enclave access out of bounds: {offset}+{len} > {}",
            region.len
        );
        if len == 0 {
            return;
        }
        let first = (offset / PAGE_SIZE) as u64;
        let last = ((offset + len - 1) / PAGE_SIZE) as u64;
        let mut page_ins = 0u64;
        let mut page_outs = 0u64;
        {
            let mut epc = self.epc.lock();
            for page in first..=last {
                let outcome = epc.touch(PageId { region: region.id, page });
                page_ins += u64::from(outcome.page_in);
                page_outs += u64::from(outcome.page_out);
            }
        }
        if page_ins > 0 {
            PlatformStats::add(&self.stats.epc_page_ins, page_ins);
            self.tick_attr(page_ins * self.cost.epc_page_in_ns, Attribution::Enclave);
        }
        if page_outs > 0 {
            PlatformStats::add(&self.stats.epc_page_outs, page_outs);
            self.tick_attr(page_outs * self.cost.epc_page_out_ns, Attribution::Enclave);
        }
        PlatformStats::add(&self.stats.enclave_copy_bytes, len as u64);
        self.tick_attr(
            CostModel::copy_cost(self.cost.enclave_copy_ns_per_kb, len),
            Attribution::Enclave,
        );
    }

    /// Current EPC residency, in pages (for assertions and debugging).
    pub fn epc_resident_pages(&self) -> usize {
        self.epc.lock().resident()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_platform(epc_pages: usize) -> Arc<Platform> {
        Platform::new(CostModel::paper_defaults().with_epc_bytes(epc_pages * PAGE_SIZE))
    }

    #[test]
    fn ecall_ocall_charge_and_count() {
        let p = Platform::with_defaults();
        let v = p.ecall(|| 41) + 1;
        assert_eq!(v, 42);
        p.ocall(|| ());
        let s = p.stats();
        assert_eq!((s.ecalls, s.ocalls), (1, 1));
        assert_eq!(p.clock().now_ns(), p.cost().ecall_ns + p.cost().ocall_ns);
    }

    #[test]
    fn batch_ecall_charges_one_transition_plus_marshalling() {
        // Pin the batch cost model: one fixed transition however many
        // records ride along, plus a cross-boundary copy of the payload.
        let p = Platform::with_defaults();
        let t0 = p.clock().now_ns();
        p.ecall_with_payload(32 * 1024, || ());
        let charged = p.clock().now_ns() - t0;
        let expected =
            p.cost().ecall_ns + CostModel::copy_cost(p.cost().cross_copy_ns_per_kb, 32 * 1024);
        assert_eq!(charged, expected);
        let s = p.stats();
        assert_eq!(s.ecalls, 1, "a batch is one transition");
        assert_eq!(s.cross_copy_bytes, 32 * 1024, "arguments are marshalled byte for byte");
        // An empty payload degenerates to the flat transition cost.
        let t1 = p.clock().now_ns();
        p.ecall_with_payload(0, || ());
        assert_eq!(p.clock().now_ns() - t1, p.cost().ecall_ns);
        // Two batched records cost less than two singleton calls as soon as
        // the payload is smaller than a transition's worth of copying.
        let singleton =
            2 * (p.cost().ecall_ns + CostModel::copy_cost(p.cost().cross_copy_ns_per_kb, 116));
        let batched = p.cost().ecall_ns + CostModel::copy_cost(p.cost().cross_copy_ns_per_kb, 232);
        assert!(batched < singleton);
    }

    #[test]
    fn time_split_accounts_every_nanosecond() {
        let p = Platform::with_defaults();
        // Host-side work, a transition, enclave-side work inside the call.
        p.dram_access(4096);
        let r = p.enclave_alloc(PAGE_SIZE);
        p.ecall_with_payload(1024, || {
            p.enclave_touch(&r, 0, PAGE_SIZE);
            p.charge_hash(256);
        });
        let split = p.time_split();
        assert_eq!(split.total_ns(), p.clock().now_ns(), "buckets must sum to the clock");
        assert!(split.host_ns > 0, "dram access is host time");
        assert!(split.boundary_ns >= p.cost().ecall_ns, "transition + marshalling");
        assert!(split.enclave_ns > 0, "paging and in-call hashing are enclave time");
        // The in-call hash was attributed to the enclave, not the host.
        let hash_ns = p.cost().hash_cost(256);
        assert!(split.enclave_ns >= hash_ns);
    }

    #[test]
    fn thread_charges_mirror_platform_charges() {
        let p = Platform::with_defaults();
        let before = crate::thread_charges();
        p.ecall(|| p.charge_hash(64));
        p.ocall(|| ());
        let d = crate::thread_charges().since(&before);
        assert_eq!((d.ecalls, d.ocalls), (1, 1));
        assert_eq!(d.ns, d.enclave_ns + d.host_ns + d.boundary_ns);
        assert_eq!(d.enclave_ns, p.cost().hash_cost(64));
        assert_eq!(d.boundary_ns, p.cost().ecall_ns + p.cost().ocall_ns);
    }

    #[test]
    fn touch_within_epc_faults_once() {
        let p = tiny_platform(16);
        let r = p.enclave_alloc(8 * PAGE_SIZE);
        p.enclave_touch(&r, 0, 8 * PAGE_SIZE);
        let after_warm = p.stats().epc_page_ins;
        assert_eq!(after_warm, 8);
        p.enclave_touch(&r, 0, 8 * PAGE_SIZE);
        assert_eq!(p.stats().epc_page_ins, after_warm, "warm touches must not fault");
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let p = tiny_platform(4);
        let r = p.enclave_alloc(16 * PAGE_SIZE);
        for _ in 0..5 {
            p.enclave_touch(&r, 0, 16 * PAGE_SIZE);
        }
        let s = p.stats();
        assert!(s.epc_page_ins > 16, "expected repeated faulting, got {}", s.epc_page_ins);
        assert!(s.epc_page_outs > 0);
    }

    #[test]
    fn paging_costs_dominate_when_thrashing() {
        let p_small = tiny_platform(4);
        let p_big = tiny_platform(64);
        let (rs, rb) = (p_small.enclave_alloc(32 * PAGE_SIZE), p_big.enclave_alloc(32 * PAGE_SIZE));
        for _ in 0..10 {
            p_small.enclave_touch(&rs, 0, 32 * PAGE_SIZE);
            p_big.enclave_touch(&rb, 0, 32 * PAGE_SIZE);
        }
        assert!(
            p_small.clock().now_ns() > 3 * p_big.clock().now_ns(),
            "thrashing platform should be much slower: {} vs {}",
            p_small.clock().now_ns(),
            p_big.clock().now_ns()
        );
    }

    #[test]
    fn free_releases_residency_and_bytes() {
        let p = tiny_platform(16);
        let r = p.enclave_alloc(4 * PAGE_SIZE);
        p.enclave_touch(&r, 0, 4 * PAGE_SIZE);
        assert_eq!(p.epc_resident_pages(), 4);
        p.enclave_free(r);
        assert_eq!(p.epc_resident_pages(), 0);
        assert_eq!(p.enclave_allocated_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_touch_panics() {
        let p = tiny_platform(4);
        let r = p.enclave_alloc(PAGE_SIZE);
        p.enclave_touch(&r, 0, PAGE_SIZE + 1);
    }

    #[test]
    fn disk_charges_accumulate() {
        let p = Platform::with_defaults();
        p.charge_disk_seek();
        p.charge_disk_transfer(4096);
        let s = p.stats();
        assert_eq!(s.disk_seeks, 1);
        assert_eq!(s.disk_bytes, 4096);
        assert!(p.clock().now_ns() >= p.cost().disk_seek_ns);
    }

    #[test]
    fn zero_len_touch_is_noop() {
        let p = tiny_platform(4);
        let r = p.enclave_alloc(PAGE_SIZE);
        p.enclave_touch(&r, 0, 0);
        assert_eq!(p.stats().epc_page_ins, 0);
    }
}
