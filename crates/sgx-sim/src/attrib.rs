//! Attribution of virtual time to the enclave vs the untrusted host.
//!
//! The serial-class machinery ([`crate::serial`]) answers "which lock was
//! held"; this module answers "which *world* paid". Every nanosecond that
//! [`Platform`](crate::Platform) charges lands in exactly one of three
//! buckets:
//!
//! * **enclave** — trusted execution: EPC traffic, and any charge made
//!   while the calling thread is inside an [`ecall`](crate::Platform::ecall)
//!   (or an explicit [`enclave_scope`]).
//! * **host** — untrusted execution: disk, DRAM and compute charged while
//!   the thread runs outside the enclave (including inside an
//!   [`ocall`](crate::Platform::ocall)).
//! * **boundary** — world switches themselves plus cross-boundary copies
//!   (argument marshalling through the MEE).
//!
//! Which world a thread is in is tracked thread-locally: `ecall` enters the
//! enclave for the closure's duration, `ocall` leaves it, and trusted code
//! that runs *outside* an ecall wrapper (e.g. maintenance folds on
//! background threads) can mark itself with [`enclave_scope`]. The same
//! charges are mirrored into per-thread accumulators ([`thread_charges`])
//! so a tracing layer can compute per-span deltas without touching the
//! platform's shared atomics.

use std::cell::Cell;

/// The execution world a thread is currently attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum World {
    /// Untrusted execution (the default for every thread).
    Host,
    /// Trusted execution inside the enclave.
    Enclave,
}

/// Where a single charge belongs, decided by the charge site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Attribution {
    /// Attribute to whatever world the calling thread is in.
    CurrentWorld,
    /// Always enclave time (EPC paging and in-enclave copies).
    Enclave,
    /// World-switch and cross-boundary marshalling time.
    Boundary,
}

thread_local! {
    static WORLD: Cell<World> = const { Cell::new(World::Host) };
    static CHARGES: Cell<ThreadCharges> = const { Cell::new(ThreadCharges::ZERO) };
}

/// The world the calling thread is currently attributed to.
pub fn current_world() -> World {
    WORLD.with(Cell::get)
}

/// RAII guard produced by [`enclave_scope`]; restores the previous world
/// on drop.
#[derive(Debug)]
pub struct WorldScope {
    prev: World,
}

impl Drop for WorldScope {
    fn drop(&mut self) {
        WORLD.with(|w| w.set(self.prev));
    }
}

fn enter(world: World) -> WorldScope {
    let prev = WORLD.with(|w| w.replace(world));
    WorldScope { prev }
}

/// Marks the calling thread as executing trusted (enclave) code until the
/// returned guard drops.
///
/// [`Platform::ecall`](crate::Platform::ecall) does this automatically;
/// use this for trusted work that runs on threads never entered through an
/// ecall wrapper (e.g. background maintenance folding digests).
pub fn enclave_scope() -> WorldScope {
    enter(World::Enclave)
}

/// Marks the calling thread as executing untrusted (host) code until the
/// returned guard drops (what [`Platform::ocall`](crate::Platform::ocall)
/// does for its closure).
pub fn host_scope() -> WorldScope {
    enter(World::Host)
}

/// Cumulative platform charges made by the calling thread.
///
/// Monotonic per thread; snapshot it before and after a region and take
/// [`ThreadCharges::since`] to attribute exactly the work this thread did
/// there — unlike [`Platform::stats`](crate::Platform::stats), concurrent
/// threads never bleed into the delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCharges {
    /// Total virtual nanoseconds charged by this thread.
    pub ns: u64,
    /// Nanoseconds attributed to enclave execution.
    pub enclave_ns: u64,
    /// Nanoseconds attributed to host execution.
    pub host_ns: u64,
    /// Nanoseconds attributed to world switches + cross-boundary copies.
    pub boundary_ns: u64,
    /// ECalls made by this thread.
    pub ecalls: u64,
    /// OCalls made by this thread.
    pub ocalls: u64,
    /// Bytes this thread copied across the enclave boundary.
    pub cross_copy_bytes: u64,
}

impl ThreadCharges {
    const ZERO: ThreadCharges = ThreadCharges {
        ns: 0,
        enclave_ns: 0,
        host_ns: 0,
        boundary_ns: 0,
        ecalls: 0,
        ocalls: 0,
        cross_copy_bytes: 0,
    };

    /// Per-field difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &ThreadCharges) -> ThreadCharges {
        ThreadCharges {
            ns: self.ns.saturating_sub(earlier.ns),
            enclave_ns: self.enclave_ns.saturating_sub(earlier.enclave_ns),
            host_ns: self.host_ns.saturating_sub(earlier.host_ns),
            boundary_ns: self.boundary_ns.saturating_sub(earlier.boundary_ns),
            ecalls: self.ecalls.saturating_sub(earlier.ecalls),
            ocalls: self.ocalls.saturating_sub(earlier.ocalls),
            cross_copy_bytes: self.cross_copy_bytes.saturating_sub(earlier.cross_copy_bytes),
        }
    }

    /// Per-field sum `self + other`, saturating at `u64::MAX`. The fold a
    /// trace analyzer uses to aggregate sibling spans before subtracting
    /// them from a parent's window.
    pub fn plus(&self, other: &ThreadCharges) -> ThreadCharges {
        ThreadCharges {
            ns: self.ns.saturating_add(other.ns),
            enclave_ns: self.enclave_ns.saturating_add(other.enclave_ns),
            host_ns: self.host_ns.saturating_add(other.host_ns),
            boundary_ns: self.boundary_ns.saturating_add(other.boundary_ns),
            ecalls: self.ecalls.saturating_add(other.ecalls),
            ocalls: self.ocalls.saturating_add(other.ocalls),
            cross_copy_bytes: self.cross_copy_bytes.saturating_add(other.cross_copy_bytes),
        }
    }

    /// This charge set viewed as a per-world [`TimeSplit`].
    pub fn split(&self) -> TimeSplit {
        TimeSplit {
            enclave_ns: self.enclave_ns,
            host_ns: self.host_ns,
            boundary_ns: self.boundary_ns,
        }
    }
}

/// Snapshot of the calling thread's cumulative charges.
pub fn thread_charges() -> ThreadCharges {
    CHARGES.with(Cell::get)
}

/// Resolves an [`Attribution`] to a concrete bucket index
/// (0 = enclave, 1 = host, 2 = boundary) and mirrors the charge into the
/// thread-local accumulators. Returns the bucket for the platform's shared
/// accumulators.
pub(crate) fn note_time(ns: u64, attr: Attribution) -> usize {
    let bucket = match attr {
        Attribution::Enclave => 0,
        Attribution::Boundary => 2,
        Attribution::CurrentWorld => match current_world() {
            World::Enclave => 0,
            World::Host => 1,
        },
    };
    CHARGES.with(|c| {
        let mut v = c.get();
        v.ns += ns;
        match bucket {
            0 => v.enclave_ns += ns,
            1 => v.host_ns += ns,
            _ => v.boundary_ns += ns,
        }
        c.set(v);
    });
    bucket
}

/// Mirrors a world-switch event into the thread-local accumulators.
pub(crate) fn note_transition(ecalls: u64, ocalls: u64) {
    CHARGES.with(|c| {
        let mut v = c.get();
        v.ecalls += ecalls;
        v.ocalls += ocalls;
        c.set(v);
    });
}

/// Mirrors cross-boundary copied bytes into the thread-local accumulators.
pub(crate) fn note_cross_bytes(bytes: u64) {
    CHARGES.with(|c| {
        let mut v = c.get();
        v.cross_copy_bytes += bytes;
        c.set(v);
    });
}

/// Virtual time split by world, as accumulated by one
/// [`Platform`](crate::Platform).
///
/// `enclave_ns + host_ns + boundary_ns` equals the total virtual time the
/// platform has charged (its clock advance since creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeSplit {
    /// Nanoseconds of trusted (enclave) execution.
    pub enclave_ns: u64,
    /// Nanoseconds of untrusted (host) execution.
    pub host_ns: u64,
    /// Nanoseconds of world switches and cross-boundary copies.
    pub boundary_ns: u64,
}

impl TimeSplit {
    /// Total virtual nanoseconds across all three buckets.
    pub fn total_ns(&self) -> u64 {
        self.enclave_ns + self.host_ns + self.boundary_ns
    }

    /// Per-field difference `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &TimeSplit) -> TimeSplit {
        TimeSplit {
            enclave_ns: self.enclave_ns.saturating_sub(earlier.enclave_ns),
            host_ns: self.host_ns.saturating_sub(earlier.host_ns),
            boundary_ns: self.boundary_ns.saturating_sub(earlier.boundary_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_world(), World::Host);
        {
            let _e = enclave_scope();
            assert_eq!(current_world(), World::Enclave);
            {
                let _h = host_scope();
                assert_eq!(current_world(), World::Host);
            }
            assert_eq!(current_world(), World::Enclave);
        }
        assert_eq!(current_world(), World::Host);
    }

    #[test]
    fn note_time_follows_world() {
        let before = thread_charges();
        assert_eq!(note_time(5, Attribution::CurrentWorld), 1);
        {
            let _e = enclave_scope();
            assert_eq!(note_time(7, Attribution::CurrentWorld), 0);
        }
        assert_eq!(note_time(3, Attribution::Boundary), 2);
        let d = thread_charges().since(&before);
        assert_eq!((d.ns, d.enclave_ns, d.host_ns, d.boundary_ns), (15, 7, 5, 3));
    }

    #[test]
    fn charge_deltas_saturate() {
        let a = ThreadCharges { ns: 10, ..Default::default() };
        let b = ThreadCharges { ns: 4, ..Default::default() };
        assert_eq!(b.since(&a).ns, 0);
        let split = TimeSplit { enclave_ns: 1, host_ns: 2, boundary_ns: 3 };
        assert_eq!(split.total_ns(), 6);
        assert_eq!(split.delta(&TimeSplit::default()), split);
    }
}
