//! Trusted monotonic counter (§5.6.1 of the paper).
//!
//! eLSM defends rollback attacks by periodically binding the current dataset
//! digest to a hardware monotonic counter (TPM / Intel ME /
//! `sgx_create_monotonic_counter`). Counter writes are very slow (tens of
//! milliseconds), which is why the paper adds a tunable write buffer that
//! batches counter updates.
//!
//! The simulator models the counter as state that *survives power cycles and
//! rollback attacks* — unlike untrusted storage, which an adversary can
//! replace with an older version. Tests and the `elsm::rollback` module use
//! this asymmetry to demonstrate detection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elsm_crypto::Digest;
use parking_lot::Mutex;

use crate::platform::Platform;

/// A hardware-backed monotonic counter with an associated digest slot.
///
/// `increment_to` atomically bumps the counter and records the digest the
/// enclave binds to that epoch. Both survive simulated power cycles.
///
/// # Examples
///
/// ```
/// use sgx_sim::{MonotonicCounter, Platform};
/// use elsm_crypto::sha256::sha256;
///
/// let p = Platform::with_defaults();
/// let counter = MonotonicCounter::new(p);
/// let epoch = counter.increment_to(sha256(b"dataset v1"));
/// assert_eq!(epoch, 1);
/// assert_eq!(counter.read().0, 1);
/// ```
#[derive(Debug)]
pub struct MonotonicCounter {
    platform: Arc<Platform>,
    value: AtomicU64,
    bound_digest: Mutex<Digest>,
}

impl MonotonicCounter {
    /// Creates a counter at zero bound to the zero digest.
    pub fn new(platform: Arc<Platform>) -> Arc<Self> {
        Arc::new(MonotonicCounter {
            platform,
            value: AtomicU64::new(0),
            bound_digest: Mutex::new(Digest::ZERO),
        })
    }

    /// Bumps the counter, binding `digest` to the new epoch. Returns the new
    /// counter value. Charges the (slow) hardware write.
    pub fn increment_to(&self, digest: Digest) -> u64 {
        self.platform.charge_counter_write();
        let mut slot = self.bound_digest.lock();
        let v = self.value.fetch_add(1, Ordering::SeqCst) + 1;
        *slot = digest;
        v
    }

    /// Reads the counter value and its bound digest. Charges the hardware
    /// read.
    pub fn read(&self) -> (u64, Digest) {
        self.platform.charge_counter_read();
        let slot = self.bound_digest.lock();
        (self.value.load(Ordering::SeqCst), *slot)
    }

    /// Verifies that `digest` matches the digest bound to the current epoch
    /// — the freshness check an enclave performs after restart.
    pub fn verify_current(&self, digest: &Digest) -> bool {
        let (_, bound) = self.read();
        bound == *digest
    }
}

/// Batches counter writes: the paper's tunable write buffer (§5.6.1) that
/// amortizes the multi-millisecond hardware write over many updates.
#[derive(Debug)]
pub struct BufferedCounter {
    counter: Arc<MonotonicCounter>,
    buffer_capacity: usize,
    pending: Mutex<PendingState>,
}

#[derive(Debug)]
struct PendingState {
    updates: usize,
    latest: Digest,
}

impl BufferedCounter {
    /// Wraps `counter`, flushing to hardware every `buffer_capacity`
    /// updates.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_capacity` is zero.
    pub fn new(counter: Arc<MonotonicCounter>, buffer_capacity: usize) -> Self {
        assert!(buffer_capacity > 0, "buffer capacity must be positive");
        BufferedCounter {
            counter,
            buffer_capacity,
            pending: Mutex::new(PendingState { updates: 0, latest: Digest::ZERO }),
        }
    }

    /// Records a new dataset digest; writes to hardware only when the
    /// buffer fills. Returns `Some(epoch)` when a hardware write happened.
    pub fn update(&self, digest: Digest) -> Option<u64> {
        let mut pending = self.pending.lock();
        pending.latest = digest;
        pending.updates += 1;
        if pending.updates >= self.buffer_capacity {
            pending.updates = 0;
            let d = pending.latest;
            drop(pending);
            Some(self.counter.increment_to(d))
        } else {
            None
        }
    }

    /// Forces any pending digest out to hardware (e.g., on clean shutdown).
    pub fn flush(&self) -> Option<u64> {
        let mut pending = self.pending.lock();
        if pending.updates == 0 {
            return None;
        }
        pending.updates = 0;
        let d = pending.latest;
        drop(pending);
        Some(self.counter.increment_to(d))
    }

    /// The wrapped hardware counter.
    pub fn counter(&self) -> &Arc<MonotonicCounter> {
        &self.counter
    }
}

/// The hardware-held fencing record: who leads, how far replication got,
/// and what the dataset looked like when it was last bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FencedState {
    /// Leadership generation: bumped exactly once per successful
    /// promotion. A node holding an older generation is fenced out.
    pub generation: u64,
    /// Replication progress (shipped/applied event count) at the last
    /// bind. A candidate that has applied less than this is serving a
    /// rolled-back or stale state.
    pub progress: u64,
    /// Dataset digest bound at `progress` (§5.6.1); [`Digest::ZERO`]
    /// until the first bind.
    pub digest: Digest,
}

/// The failover fence of a replication group (§5.6.1 applied to
/// promotion): one hardware monotonic counter extended with the progress
/// and digest of the fenced state.
///
/// Like [`MonotonicCounter`], the state survives power cycles and
/// rollback attacks — it models the TPM/Intel-ME counter (or a
/// replicated fencing service) the paper's rollback defence relies on.
/// Two operations exist:
///
/// * [`FencingCounter::bind`] — the **acting primary** re-binds its
///   current progress + dataset digest within its own generation (the
///   periodic §5.6.1 counter write);
/// * [`FencingCounter::advance`] — a **promotion**: hardware-atomically
///   bumps the generation, naming the expected current generation. A
///   stale expectation fails, so two concurrent promotions can never
///   both succeed — split-brain is structurally impossible.
///
/// The enclave-side checks (is the candidate's progress at least the
/// fenced progress? does its digest match?) live in the replication
/// layer; the counter only provides the surviving state and the atomic
/// generation bump.
#[derive(Debug)]
pub struct FencingCounter {
    platform: Arc<Platform>,
    state: Mutex<FencedState>,
}

impl FencingCounter {
    /// Creates a fence at generation 0 with zero progress and digest.
    pub fn new(platform: Arc<Platform>) -> Arc<Self> {
        Arc::new(FencingCounter {
            platform,
            state: Mutex::new(FencedState { generation: 0, progress: 0, digest: Digest::ZERO }),
        })
    }

    /// Reads the fenced state. Charges the hardware read.
    pub fn read(&self) -> FencedState {
        self.platform.charge_counter_read();
        *self.state.lock()
    }

    /// Atomically bumps the generation, binding the new leader's progress
    /// and digest. Succeeds only when `expected_generation` names the
    /// current generation; otherwise returns the current state unchanged
    /// (another promotion won the race, or the caller was already
    /// fenced). Charges the (slow) hardware write.
    ///
    /// # Errors
    ///
    /// Returns the current [`FencedState`] on a generation mismatch.
    pub fn advance(
        &self,
        expected_generation: u64,
        progress: u64,
        digest: Digest,
    ) -> Result<u64, FencedState> {
        self.platform.charge_counter_write();
        let mut state = self.state.lock();
        if state.generation != expected_generation {
            return Err(*state);
        }
        state.generation += 1;
        state.progress = progress;
        state.digest = digest;
        Ok(state.generation)
    }

    /// Re-binds progress + digest within the caller's own generation
    /// (the acting primary's periodic write). Fails — leaving the state
    /// unchanged — when the generation moved (the caller was deposed) or
    /// when `progress` would move backwards (a rolled-back caller).
    /// Charges the hardware write.
    ///
    /// # Errors
    ///
    /// Returns the current [`FencedState`] on either failure.
    pub fn bind(&self, generation: u64, progress: u64, digest: Digest) -> Result<(), FencedState> {
        self.platform.charge_counter_write();
        let mut state = self.state.lock();
        if state.generation != generation || progress < state.progress {
            return Err(*state);
        }
        state.progress = progress;
        state.digest = digest;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsm_crypto::sha256::sha256;

    #[test]
    fn increments_are_monotonic() {
        let p = Platform::with_defaults();
        let c = MonotonicCounter::new(p);
        assert_eq!(c.increment_to(sha256(b"a")), 1);
        assert_eq!(c.increment_to(sha256(b"b")), 2);
        let (v, d) = c.read();
        assert_eq!(v, 2);
        assert_eq!(d, sha256(b"b"));
    }

    #[test]
    fn verify_detects_stale_digest() {
        let p = Platform::with_defaults();
        let c = MonotonicCounter::new(p);
        c.increment_to(sha256(b"v1"));
        c.increment_to(sha256(b"v2"));
        assert!(c.verify_current(&sha256(b"v2")));
        assert!(!c.verify_current(&sha256(b"v1")), "rolled-back digest must fail");
    }

    #[test]
    fn counter_writes_are_expensive() {
        let p = Platform::with_defaults();
        let c = MonotonicCounter::new(p.clone());
        let before = p.clock().now_ns();
        c.increment_to(sha256(b"x"));
        assert!(p.clock().now_ns() - before >= p.cost().counter_write_ns);
    }

    #[test]
    fn buffered_counter_batches_writes() {
        let p = Platform::with_defaults();
        let c = MonotonicCounter::new(p.clone());
        let b = BufferedCounter::new(c, 4);
        assert_eq!(b.update(sha256(b"1")), None);
        assert_eq!(b.update(sha256(b"2")), None);
        assert_eq!(b.update(sha256(b"3")), None);
        assert_eq!(b.update(sha256(b"4")), Some(1));
        assert_eq!(p.stats().counter_writes, 1);
        // Hardware holds the *latest* digest at flush time.
        assert!(b.counter().verify_current(&sha256(b"4")));
    }

    #[test]
    fn flush_pushes_pending() {
        let p = Platform::with_defaults();
        let b = BufferedCounter::new(MonotonicCounter::new(p), 100);
        b.update(sha256(b"only"));
        assert_eq!(b.flush(), Some(1));
        assert_eq!(b.flush(), None, "nothing pending after flush");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let p = Platform::with_defaults();
        BufferedCounter::new(MonotonicCounter::new(p), 0);
    }

    #[test]
    fn fencing_advance_is_generation_atomic() {
        let p = Platform::with_defaults();
        let f = FencingCounter::new(p.clone());
        assert_eq!(f.read().generation, 0);
        assert_eq!(f.advance(0, 10, sha256(b"d1")), Ok(1));
        // A racing promotion naming the stale generation loses.
        let lost = f.advance(0, 12, sha256(b"d2")).unwrap_err();
        assert_eq!(lost.generation, 1);
        assert_eq!(lost.progress, 10);
        assert_eq!(f.advance(1, 12, sha256(b"d2")), Ok(2));
        assert_eq!(p.stats().counter_writes, 3, "every attempt pays the hardware write");
    }

    #[test]
    fn fencing_bind_rejects_deposed_and_backwards() {
        let p = Platform::with_defaults();
        let f = FencingCounter::new(p);
        f.advance(0, 5, sha256(b"a")).unwrap();
        assert!(f.bind(1, 9, sha256(b"b")).is_ok());
        // Progress may never move backwards (a rolled-back caller).
        assert!(f.bind(1, 7, sha256(b"c")).is_err());
        // A deposed generation cannot bind at all.
        f.advance(1, 9, sha256(b"b")).unwrap();
        assert!(f.bind(1, 20, sha256(b"d")).is_err());
        let s = f.read();
        assert_eq!((s.generation, s.progress, s.digest), (2, 9, sha256(b"b")));
    }
}
