//! Enclave sealing: encrypt-and-authenticate data for untrusted storage.
//!
//! SGX derives sealing keys from the CPU's fuse key and the enclave
//! measurement, so only the same enclave on the same machine can unseal.
//! The simulator models this with a [`Sealer`] holding an AEAD key derived
//! from a measurement digest. eLSM-P1 uses sealing at *file granularity*
//! (Table 1): every SSTable block written outside the enclave is sealed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use elsm_crypto::aead::{nonce_from_u64s, AeadError, AeadKey, NONCE_LEN};
use elsm_crypto::{sha256_concat, Digest};

/// A sealed blob: nonce plus ciphertext-and-tag, safe to store untrusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    nonce: [u8; NONCE_LEN],
    ciphertext: Vec<u8>,
}

impl SealedBlob {
    /// Total stored size in bytes (nonce + ciphertext + tag).
    pub fn stored_len(&self) -> usize {
        NONCE_LEN + self.ciphertext.len()
    }

    /// Serializes the blob to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.stored_len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a blob serialized by [`SealedBlob::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SealError`] if the input is shorter than a nonce.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SealError> {
        if bytes.len() < NONCE_LEN {
            return Err(SealError);
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        Ok(SealedBlob { nonce, ciphertext: bytes[NONCE_LEN..].to_vec() })
    }
}

/// Seals and unseals blobs under a measurement-derived key.
pub struct Sealer {
    key: AeadKey,
    measurement: Digest,
    nonce_counter: AtomicU64,
}

impl fmt::Debug for Sealer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sealer(measurement={})", self.measurement.short_hex())
    }
}

impl Sealer {
    /// Derives a sealer for the enclave identified by `measurement` on the
    /// machine identified by `machine_secret`.
    pub fn new(measurement: Digest, machine_secret: &[u8]) -> Self {
        let master = sha256_concat(&[measurement.as_bytes(), machine_secret]);
        Sealer {
            key: AeadKey::derive(master.as_bytes()),
            measurement,
            nonce_counter: AtomicU64::new(0),
        }
    }

    /// The enclave measurement this sealer is bound to.
    pub fn measurement(&self) -> Digest {
        self.measurement
    }

    /// Seals `plaintext` with authenticated `aad` (e.g., file name + block
    /// number, so blobs cannot be swapped between locations).
    pub fn seal(&self, aad: &[u8], plaintext: &[u8]) -> SealedBlob {
        let n = self.nonce_counter.fetch_add(1, Ordering::Relaxed);
        let nonce = nonce_from_u64s(n, 0x5ea1_ed00);
        let ciphertext = self.key.seal(&nonce, aad, plaintext);
        SealedBlob { nonce, ciphertext }
    }

    /// Unseals a blob, verifying integrity and the binding to `aad`.
    ///
    /// # Errors
    ///
    /// Returns [`SealError`] if authentication fails (tampered blob, wrong
    /// location, or a different enclave's blob).
    pub fn unseal(&self, aad: &[u8], blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
        self.key.open(&blob.nonce, aad, &blob.ciphertext).map_err(|AeadError| SealError)
    }
}

/// Failure to unseal or parse a sealed blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealError;

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sealed blob failed authentication")
    }
}

impl std::error::Error for SealError {}

#[cfg(test)]
mod tests {
    use super::*;
    use elsm_crypto::sha256::sha256;

    fn sealer() -> Sealer {
        Sealer::new(sha256(b"enclave code v1"), b"machine-0")
    }

    #[test]
    fn seal_unseal_round_trip() {
        let s = sealer();
        let blob = s.seal(b"file=1,block=0", b"block contents");
        assert_eq!(s.unseal(b"file=1,block=0", &blob).unwrap(), b"block contents");
    }

    #[test]
    fn wrong_aad_rejected() {
        let s = sealer();
        let blob = s.seal(b"file=1,block=0", b"block contents");
        assert_eq!(s.unseal(b"file=1,block=1", &blob), Err(SealError));
    }

    #[test]
    fn different_enclave_cannot_unseal() {
        let s1 = sealer();
        let s2 = Sealer::new(sha256(b"different code"), b"machine-0");
        let blob = s1.seal(b"aad", b"secret");
        assert_eq!(s2.unseal(b"aad", &blob), Err(SealError));
    }

    #[test]
    fn different_machine_cannot_unseal() {
        let s1 = sealer();
        let s2 = Sealer::new(sha256(b"enclave code v1"), b"machine-1");
        let blob = s1.seal(b"aad", b"secret");
        assert_eq!(s2.unseal(b"aad", &blob), Err(SealError));
    }

    #[test]
    fn tampered_blob_rejected() {
        let s = sealer();
        let blob = s.seal(b"aad", b"secret");
        let mut bytes = blob.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let tampered = SealedBlob::from_bytes(&bytes).unwrap();
        assert_eq!(s.unseal(b"aad", &tampered), Err(SealError));
    }

    #[test]
    fn serialization_round_trip() {
        let s = sealer();
        let blob = s.seal(b"aad", b"payload");
        let parsed = SealedBlob::from_bytes(&blob.to_bytes()).unwrap();
        assert_eq!(parsed, blob);
        assert_eq!(s.unseal(b"aad", &parsed).unwrap(), b"payload");
    }

    #[test]
    fn truncated_bytes_rejected() {
        assert_eq!(SealedBlob::from_bytes(b"short"), Err(SealError));
    }

    #[test]
    fn nonces_are_unique_per_seal() {
        let s = sealer();
        let a = s.seal(b"", b"same");
        let b = s.seal(b"", b"same");
        assert_ne!(a, b, "two seals of identical plaintext must differ");
    }
}
