//! The SGX + storage cost model.
//!
//! All constants are in nanoseconds (or nanoseconds per unit). Defaults are
//! calibrated from published SGX measurements (Orenbach et al. EuroSys'17,
//! Arnautov et al. OSDI'16, the eLSM paper's own Figure 2/6 magnitudes):
//!
//! * an enclave world switch (ECall/OCall) costs ~8 µs,
//! * an EPC page fault (AEX + OS page handler + EWB/ELDU) costs ~30 µs,
//! * cross-boundary memcpy is ~3× slower than ordinary DRAM copy,
//! * a "disk" random read on the evaluation machine's SSD is ~85 µs seek
//!   plus ~1 µs per 4 KiB sequential transfer.
//!
//! Every number is a plain field so benchmarks can recalibrate; the shape of
//! the paper's figures is insensitive to modest changes here (the crossovers
//! are driven by the EPC-size ratio, which is exact).

/// Bytes per EPC page (SGX uses 4 KiB pages).
pub const PAGE_SIZE: usize = 4096;

/// Cost-model parameters for the simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Enclave Page Cache capacity in bytes (hardware limit; 128 MB on the
    /// paper's CPU). Benchmarks scale this together with data sizes.
    pub epc_bytes: usize,
    /// Cost of entering the enclave (ECall).
    pub ecall_ns: u64,
    /// Cost of exiting the enclave (OCall).
    pub ocall_ns: u64,
    /// EPC page-in: AEX, OS fault handler, ELDU decrypt+verify.
    pub epc_page_in_ns: u64,
    /// EPC page-out: EWB encrypt+MAC and eviction bookkeeping.
    pub epc_page_out_ns: u64,
    /// Ordinary (untrusted) DRAM access/copy, per KiB.
    pub dram_ns_per_kb: u64,
    /// Memcpy crossing the enclave boundary, per KiB (MEE en/decryption).
    pub cross_copy_ns_per_kb: u64,
    /// Memcpy inside the enclave (resident pages), per KiB.
    pub enclave_copy_ns_per_kb: u64,
    /// SHA-256 compression, per 64-byte block.
    pub hash_ns_per_block: u64,
    /// Disk seek / random-access penalty (charged when a read is not
    /// sequential with the previous one).
    pub disk_seek_ns: u64,
    /// Disk sequential transfer, per KiB.
    pub disk_ns_per_kb: u64,
    /// Fixed CPU cost of one key-value operation's bookkeeping (index
    /// probes, comparisons); keeps tiny-data latencies non-zero.
    pub op_base_ns: u64,
    /// Trusted monotonic-counter write (TPM/ME-backed; hundreds of µs).
    pub counter_write_ns: u64,
    /// Trusted monotonic-counter read.
    pub counter_read_ns: u64,
}

impl CostModel {
    /// The paper's hardware: 128 MB EPC, SSD-backed laptop.
    pub fn paper_defaults() -> Self {
        CostModel {
            epc_bytes: 128 * 1024 * 1024,
            ecall_ns: 8_000,
            ocall_ns: 8_000,
            epc_page_in_ns: 30_000,
            epc_page_out_ns: 12_000,
            dram_ns_per_kb: 30,
            cross_copy_ns_per_kb: 95,
            enclave_copy_ns_per_kb: 35,
            hash_ns_per_block: 80,
            disk_seek_ns: 85_000,
            disk_ns_per_kb: 250,
            op_base_ns: 1_500,
            counter_write_ns: 60_000_000,
            counter_read_ns: 2_000_000,
        }
    }

    /// Same constants but with the EPC capacity scaled; used by benchmarks
    /// that scale all sizes by a constant factor.
    pub fn with_epc_bytes(mut self, epc_bytes: usize) -> Self {
        self.epc_bytes = epc_bytes;
        self
    }

    /// EPC capacity in whole pages.
    pub fn epc_pages(&self) -> usize {
        self.epc_bytes / PAGE_SIZE
    }

    /// Cost of copying `len` bytes at `ns_per_kb`, rounding up so a 1-byte
    /// copy still costs something.
    pub fn copy_cost(ns_per_kb: u64, len: usize) -> u64 {
        (ns_per_kb * len as u64).div_ceil(1024)
    }

    /// Cost of hashing `len` bytes with SHA-256.
    pub fn hash_cost(&self, len: usize) -> u64 {
        // One extra block for padding/finalization.
        let blocks = (len / 64 + 1) as u64;
        blocks * self.hash_ns_per_block
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert_eq!(c.epc_pages(), 128 * 1024 * 1024 / 4096);
        assert!(c.epc_page_in_ns > c.ecall_ns, "paging must dominate switches");
        assert!(c.cross_copy_ns_per_kb > c.dram_ns_per_kb);
    }

    #[test]
    fn copy_cost_rounds_up() {
        assert_eq!(CostModel::copy_cost(100, 1), 1);
        assert_eq!(CostModel::copy_cost(100, 1024), 100);
        assert_eq!(CostModel::copy_cost(100, 2048), 200);
        assert_eq!(CostModel::copy_cost(100, 0), 0);
    }

    #[test]
    fn hash_cost_scales_with_blocks() {
        let c = CostModel::default();
        assert_eq!(c.hash_cost(0), c.hash_ns_per_block);
        assert_eq!(c.hash_cost(64), 2 * c.hash_ns_per_block);
        assert_eq!(c.hash_cost(640), 11 * c.hash_ns_per_block);
    }

    #[test]
    fn epc_override() {
        let c = CostModel::default().with_epc_bytes(4096 * 10);
        assert_eq!(c.epc_pages(), 10);
    }
}
