//! Enclave Page Cache (EPC) residency tracking.
//!
//! SGX backs enclave virtual memory with a small protected physical region
//! (128 MB on the paper's CPU). Touching a non-resident page triggers an
//! asynchronous enclave exit and an expensive encrypted page swap
//! (EWB/ELDU). This module models residency with a CLOCK (second-chance)
//! replacement policy and reports, per touch, whether a page-in and/or a
//! page-out occurred so the platform can charge the corresponding costs.

use std::collections::HashMap;

/// Identifies one 4 KiB page of one enclave allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The enclave region (allocation) this page belongs to.
    pub region: u64,
    /// Page index within the region.
    pub page: u64,
}

/// Result of touching a page: which paging events it caused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// The page had to be faulted in.
    pub page_in: bool,
    /// A victim page had to be evicted to make room.
    pub page_out: bool,
}

#[derive(Debug, Clone)]
struct Slot {
    page: PageId,
    referenced: bool,
}

/// CLOCK-replacement residency set with a fixed page capacity.
#[derive(Debug)]
pub struct EpcState {
    capacity: usize,
    slots: Vec<Slot>,
    index: HashMap<PageId, usize>,
    hand: usize,
}

impl EpcState {
    /// Creates an EPC with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — an enclave cannot run without any
    /// protected memory.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EPC capacity must be at least one page");
        EpcState { capacity, slots: Vec::new(), index: HashMap::new(), hand: 0 }
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns whether `page` is resident without touching it.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Touches `page`, faulting it in (and evicting a victim) if necessary.
    pub fn touch(&mut self, page: PageId) -> TouchOutcome {
        if let Some(&slot) = self.index.get(&page) {
            self.slots[slot].referenced = true;
            return TouchOutcome::default();
        }
        let mut outcome = TouchOutcome { page_in: true, page_out: false };
        if self.slots.len() < self.capacity {
            self.index.insert(page, self.slots.len());
            self.slots.push(Slot { page, referenced: true });
            return outcome;
        }
        // CLOCK: advance the hand, clearing reference bits, until an
        // unreferenced victim is found.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                let victim = slot.page;
                self.index.remove(&victim);
                slot.page = page;
                slot.referenced = true;
                self.index.insert(page, self.hand);
                self.hand = (self.hand + 1) % self.capacity;
                outcome.page_out = true;
                return outcome;
            }
        }
    }

    /// Drops all pages belonging to `region` (allocation freed).
    pub fn evict_region(&mut self, region: u64) {
        // Compact the slot vector, rebuilding the index.
        let mut kept = Vec::with_capacity(self.slots.len());
        for slot in self.slots.drain(..) {
            if slot.page.region != region {
                kept.push(slot);
            }
        }
        self.slots = kept;
        self.index.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            self.index.insert(slot.page, i);
        }
        if self.hand >= self.slots.len().max(1) {
            self.hand = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(region: u64, page: u64) -> PageId {
        PageId { region, page }
    }

    #[test]
    fn cold_touch_faults_in() {
        let mut e = EpcState::new(4);
        assert_eq!(e.touch(p(1, 0)), TouchOutcome { page_in: true, page_out: false });
        assert_eq!(e.resident(), 1);
    }

    #[test]
    fn warm_touch_is_free() {
        let mut e = EpcState::new(4);
        e.touch(p(1, 0));
        assert_eq!(e.touch(p(1, 0)), TouchOutcome::default());
    }

    #[test]
    fn eviction_when_full() {
        let mut e = EpcState::new(2);
        e.touch(p(1, 0));
        e.touch(p(1, 1));
        let out = e.touch(p(1, 2));
        assert!(out.page_in && out.page_out);
        assert_eq!(e.resident(), 2);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut e = EpcState::new(2);
        e.touch(p(1, 0));
        e.touch(p(1, 1));
        // Re-reference page 0 so page 1 becomes the better victim.
        e.touch(p(1, 0));
        e.touch(p(1, 2));
        // After one full sweep clearing bits, one of the originals is gone;
        // page 0 was referenced more recently so it should survive the
        // first eviction round.
        assert!(e.contains(p(1, 2)));
        assert_eq!(e.resident(), 2);
    }

    #[test]
    fn working_set_below_capacity_never_pages_after_warmup() {
        let mut e = EpcState::new(8);
        for i in 0..8 {
            e.touch(p(1, i));
        }
        for _ in 0..100 {
            for i in 0..8 {
                assert_eq!(e.touch(p(1, i)), TouchOutcome::default());
            }
        }
    }

    #[test]
    fn working_set_above_capacity_thrashes() {
        let mut e = EpcState::new(4);
        let mut faults = 0;
        for round in 0..10 {
            for i in 0..8 {
                if e.touch(p(1, i)).page_in {
                    faults += 1;
                }
            }
            let _ = round;
        }
        // Sequential sweep over 2× capacity with CLOCK faults on every
        // access after warm-up.
        assert!(faults >= 70, "expected heavy thrashing, got {faults} faults");
    }

    #[test]
    fn evict_region_removes_only_that_region() {
        let mut e = EpcState::new(8);
        e.touch(p(1, 0));
        e.touch(p(2, 0));
        e.touch(p(2, 1));
        e.evict_region(2);
        assert!(e.contains(p(1, 0)));
        assert!(!e.contains(p(2, 0)));
        assert_eq!(e.resident(), 1);
        // Freed pages fault again on next touch.
        assert!(e.touch(p(2, 0)).page_in);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_rejected() {
        EpcState::new(0);
    }
}
