//! Attribution of virtual time to store-internal critical sections.
//!
//! The virtual clock measures *work*; it says nothing about which parts of
//! that work could overlap across client threads. This module closes the
//! gap: code brackets its exclusive sections with
//! [`Platform::serial_section`](crate::Platform::serial_section), and every
//! nanosecond charged while a section is active is accumulated per
//! [`SerialClass`]. A multi-client scheduler (the YCSB concurrent runner)
//! then replays operations on N virtual threads, letting the parallel
//! portions overlap while portions of the same class exclude each other —
//! exactly how the real lock would behave.
//!
//! The active-section state is thread-local, so concurrently running OS
//! threads (e.g. the stress tests) attribute their own time correctly.

use std::cell::Cell;

/// Classes of critical section the store declares.
///
/// Each class corresponds to one mutex in the storage stack; virtual time
/// charged while a section of a class is open cannot overlap with another
/// virtual thread's time in the same class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialClass {
    /// The store's write-side lock: WAL append, memtable insert, version
    /// install, and (pre-snapshot designs) any read work done under the
    /// store-wide mutex.
    StoreWrite = 0,
    /// Flush/compaction maintenance: at most one such job runs at a time.
    Maintenance = 1,
    /// Enclave-side running digests (the WAL hash chain): folds are ordered
    /// by commit order, so concurrent writers' folds exclude each other
    /// even though they run outside the store's write lock.
    TrustedFold = 2,
    /// Incremental level-commitment recomputation: folding a compaction
    /// delta into the enclave's commitment store. Deltas install in epoch
    /// order, so concurrent jobs' folds exclude each other.
    DeltaFold = 3,
    /// Parallel compaction worker slot 0: merge work of jobs assigned to
    /// this slot excludes other jobs on the same slot but overlaps with
    /// the other slots (and with the write path).
    CompactionSlot0 = 4,
    /// Parallel compaction worker slot 1.
    CompactionSlot1 = 5,
    /// Parallel compaction worker slot 2.
    CompactionSlot2 = 6,
    /// Parallel compaction worker slot 3.
    CompactionSlot3 = 7,
}

impl SerialClass {
    /// The worker-slot class for compaction job `i` (jobs round-robin over
    /// the four slots; a scheduler with parallelism ≤ 4 gets one slot per
    /// concurrent job).
    pub fn compaction_slot(i: usize) -> SerialClass {
        match i % 4 {
            0 => SerialClass::CompactionSlot0,
            1 => SerialClass::CompactionSlot1,
            2 => SerialClass::CompactionSlot2,
            _ => SerialClass::CompactionSlot3,
        }
    }
}

/// Number of [`SerialClass`] variants (sizes the per-class accumulators).
pub const SERIAL_CLASSES: usize = 8;

thread_local! {
    /// Bitmask of serial classes currently open on this thread. Nested
    /// sections of the same class are flattened (the bit stays set).
    static ACTIVE_MASK: Cell<u8> = const { Cell::new(0) };
}

/// The bitmask of serial classes active on the calling thread.
pub(crate) fn active_mask() -> u8 {
    ACTIVE_MASK.with(Cell::get)
}

/// RAII guard marking a critical section of one class as active.
///
/// Created by [`Platform::serial_section`](crate::Platform::serial_section).
/// Dropping the guard closes the section (unless an enclosing guard of the
/// same class remains open).
#[derive(Debug)]
pub struct SerialSection {
    bit: u8,
    was_set: bool,
}

impl SerialSection {
    pub(crate) fn enter(class: SerialClass) -> Self {
        let bit = 1u8 << (class as u8);
        let was_set = ACTIVE_MASK.with(|m| {
            let prev = m.get();
            m.set(prev | bit);
            prev & bit != 0
        });
        SerialSection { bit, was_set }
    }
}

impl Drop for SerialSection {
    fn drop(&mut self) {
        if !self.was_set {
            let bit = self.bit;
            ACTIVE_MASK.with(|m| m.set(m.get() & !bit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_tracks_nesting() {
        assert_eq!(active_mask(), 0);
        {
            let _a = SerialSection::enter(SerialClass::StoreWrite);
            assert_eq!(active_mask(), 1);
            {
                let _b = SerialSection::enter(SerialClass::Maintenance);
                assert_eq!(active_mask(), 0b11);
                let _c = SerialSection::enter(SerialClass::Maintenance);
                drop(_c);
                // Outer Maintenance section still open.
                assert_eq!(active_mask(), 0b11);
            }
            assert_eq!(active_mask(), 1);
        }
        assert_eq!(active_mask(), 0);
    }
}
