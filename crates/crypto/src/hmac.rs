//! HMAC-SHA256 per RFC 2104 / FIPS 198-1, with RFC 4231 test vectors.

use crate::digest::Digest;
use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use elsm_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag, hmac_sha256(b"key", b"message"));
/// assert_ne!(tag, hmac_sha256(b"key2", b"message"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed by `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(sha256(key).as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_hash = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_hash.as_bytes());
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut h = HmacSha256::new(key);
    h.update(message);
    h.finalize()
}

/// Constant-time tag comparison.
///
/// Avoids early-exit timing differences when verifying MACs; the enclave
/// verifier uses this for every authenticity check.
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), hmac_sha256(b"key", b"part one part two"));
    }

    #[test]
    fn verify_tag_works() {
        let t1 = hmac_sha256(b"k", b"m");
        let t2 = hmac_sha256(b"k", b"m");
        let t3 = hmac_sha256(b"k", b"n");
        assert!(verify_tag(&t1, &t2));
        assert!(!verify_tag(&t1, &t3));
    }
}
