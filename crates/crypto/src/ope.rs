//! Order-preserving encoding (OPE) for range-queryable encrypted keys
//! (§5.6.2 of the paper).
//!
//! The paper points at Boldyreva-style OPE for range queries over encrypted
//! data keys. This module implements a keyed, stateless order-preserving
//! encoding over `u64` plaintexts using the classic *interval splitting*
//! construction: the ciphertext space `[0, 2^127)` is recursively split at a
//! pseudorandom point for each node of the implicit binary trie over
//! plaintext bits. Walking the plaintext's bit path narrows the interval;
//! the code is the lower end of the leaf interval. Intervals of sibling
//! subtrees are disjoint and ordered, so the encoding is *exactly*
//! order-preserving:
//!
//! `a < b  ⇔  encode(a) < encode(b)`
//!
//! Like every OPE, the scheme intentionally leaks order; that is the price
//! of server-side range filtering, and the paper accepts the same leakage.

use std::fmt;

use crate::hmac::hmac_sha256;

/// Bits of plaintext domain (full `u64`).
const DOMAIN_BITS: u32 = 64;

/// Total ciphertext width: leaves keep ≥ 2^30 width even on the worst path.
const ROOT_WIDTH: u128 = 1u128 << 127;

/// Key for order-preserving encoding of `u64` keys into `u128` codes.
#[derive(Clone)]
pub struct OpeKey {
    key: [u8; 32],
}

impl fmt::Debug for OpeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OpeKey(..)")
    }
}

impl OpeKey {
    /// Derives an OPE key from master key material.
    pub fn derive(master: &[u8]) -> Self {
        OpeKey { key: hmac_sha256(master, b"elsm/ope").into_bytes() }
    }

    /// Pseudorandom split fraction for trie node (`depth`, `prefix`),
    /// expressed as a numerator over 2^16 in `[3/8, 5/8]` so both children
    /// keep a constant fraction of the parent interval.
    fn split_num(&self, depth: u32, prefix: u64) -> u128 {
        let mut msg = [0u8; 12];
        msg[..4].copy_from_slice(&depth.to_be_bytes());
        msg[4..].copy_from_slice(&prefix.to_be_bytes());
        let h = hmac_sha256(&self.key, &msg);
        let b = h.as_bytes();
        let r14 = u128::from(u16::from_be_bytes([b[0], b[1]]) >> 2); // [0, 2^14)
        (3u128 << 13) + r14 // [3·2^13, 5·2^13) ⊂ [3/8, 5/8) · 2^16
    }

    /// Encodes `x` order-preservingly into a `u128` code.
    ///
    /// # Examples
    ///
    /// ```
    /// let k = elsm_crypto::OpeKey::derive(b"master");
    /// assert!(k.encode(10) < k.encode(11));
    /// ```
    pub fn encode(&self, x: u64) -> u128 {
        let mut offset: u128 = 0;
        let mut width: u128 = ROOT_WIDTH;
        for depth in 0..DOMAIN_BITS {
            let shift = DOMAIN_BITS - 1 - depth;
            let bit = (x >> shift) & 1;
            let prefix = if shift == 63 { 0 } else { x >> (shift + 1) };
            // (width >> 16) keeps the multiplication inside u128; rounding
            // does not affect correctness because sibling intervals are
            // [offset, offset+left) and [offset+left, offset+width) whatever
            // `left` is, and width stays ≫ 2^16 at every depth.
            let left = (width >> 16) * self.split_num(depth, prefix);
            if bit == 0 {
                width = left;
            } else {
                offset += left;
                width -= left;
            }
        }
        debug_assert!(width >= 1, "leaf interval degenerated");
        offset
    }
}

/// Encodes an arbitrary byte-string key order-preservingly by encoding its
/// first 8 bytes as a big-endian integer. Keys sharing an 8-byte prefix
/// collide; callers keep the deterministic ciphertext alongside to break
/// ties (as eLSM's confidentiality layer does).
pub fn encode_prefix(key: &OpeKey, bytes: &[u8]) -> u128 {
    let mut x = 0u64;
    for i in 0..8 {
        x = (x << 8) | u64::from(bytes.get(i).copied().unwrap_or(0));
    }
    key.encode(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> OpeKey {
        OpeKey::derive(b"ope master")
    }

    #[test]
    fn preserves_order_small() {
        let k = key();
        let mut prev = None;
        for x in 0..500u64 {
            let e = k.encode(x);
            if let Some(p) = prev {
                assert!(e > p, "order violated at {x}");
            }
            prev = Some(e);
        }
    }

    #[test]
    fn preserves_order_random_pairs() {
        let k = key();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..2000 {
            let a = next();
            let b = next();
            match a.cmp(&b) {
                std::cmp::Ordering::Less => assert!(k.encode(a) < k.encode(b), "{a} vs {b}"),
                std::cmp::Ordering::Equal => assert_eq!(k.encode(a), k.encode(b)),
                std::cmp::Ordering::Greater => assert!(k.encode(a) > k.encode(b), "{a} vs {b}"),
            }
        }
    }

    #[test]
    fn extremes_are_ordered() {
        let k = key();
        assert!(k.encode(0) < k.encode(u64::MAX));
        assert!(k.encode(u64::MAX - 1) < k.encode(u64::MAX));
        assert!(k.encode(0) < k.encode(1));
    }

    #[test]
    fn deterministic() {
        let k = key();
        assert_eq!(k.encode(42), k.encode(42));
    }

    #[test]
    fn different_keys_give_different_codes() {
        let k1 = key();
        let k2 = OpeKey::derive(b"other");
        let same = (0..50u64).filter(|&x| k1.encode(x) == k2.encode(x)).count();
        assert!(same < 50);
    }

    #[test]
    fn prefix_encoding_monotone_on_bytes() {
        let k = key();
        let a = encode_prefix(&k, b"apple");
        let b = encode_prefix(&k, b"banana");
        let c = encode_prefix(&k, b"cherry");
        assert!(a < b && b < c);
    }

    #[test]
    fn prefix_encoding_handles_short_keys() {
        let k = key();
        assert!(encode_prefix(&k, b"") < encode_prefix(&k, b"a"));
        assert!(encode_prefix(&k, b"a") < encode_prefix(&k, b"ab"));
    }
}
