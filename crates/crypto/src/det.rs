//! Deterministic encryption (DE) for data keys (§5.6.2 of the paper).
//!
//! eLSM encrypts data keys deterministically so the untrusted host can
//! search the ciphertext domain directly. The paper uses the SGX SDK AES
//! primitive in a deterministic mode; here we build a length-preserving-ish
//! deterministic scheme from scratch:
//!
//! * a 4-round Feistel network whose round function is HMAC-SHA256, giving a
//!   pseudorandom permutation over byte strings of each length (Luby–Rackoff),
//! * equality of plaintexts ⇔ equality of ciphertexts, which is exactly the
//!   leakage deterministic encryption is defined to allow.
//!
//! Note that ciphertext order does **not** follow plaintext order — range
//! queries over encrypted keys use [`crate::ope`] instead.

use std::fmt;

use crate::hmac::hmac_sha256;

/// Key for deterministic encryption of data keys.
#[derive(Clone)]
pub struct DetKey {
    rounds: [[u8; 32]; 4],
}

impl fmt::Debug for DetKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DetKey(..)")
    }
}

impl DetKey {
    /// Derives a deterministic-encryption key from master key material.
    pub fn derive(master: &[u8]) -> Self {
        let mut rounds = [[0u8; 32]; 4];
        for (i, r) in rounds.iter_mut().enumerate() {
            *r = hmac_sha256(master, format!("elsm/det/round{i}").as_bytes()).into_bytes();
        }
        DetKey { rounds }
    }

    fn round(&self, i: usize, data: &[u8], out_len: usize) -> Vec<u8> {
        // Expand HMAC output to out_len bytes (counter-mode expansion).
        let mut out = Vec::with_capacity(out_len);
        let mut ctr = 0u32;
        while out.len() < out_len {
            let mut msg = Vec::with_capacity(data.len() + 4);
            msg.extend_from_slice(&ctr.to_be_bytes());
            msg.extend_from_slice(data);
            let block = hmac_sha256(&self.rounds[i], &msg);
            let take = (out_len - out.len()).min(32);
            out.extend_from_slice(&block.as_bytes()[..take]);
            ctr += 1;
        }
        out
    }

    /// Deterministically encrypts `plaintext`.
    ///
    /// Inputs shorter than 2 bytes are padded internally (a length prefix is
    /// added), so all inputs round-trip exactly through [`DetKey::decrypt`].
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        // Prefix with a 2-byte length so tiny inputs still split into two
        // non-trivial Feistel halves, then run the 4-round network.
        let mut buf = Vec::with_capacity(plaintext.len() + 2);
        buf.extend_from_slice(&(plaintext.len() as u16).to_be_bytes());
        buf.extend_from_slice(plaintext);
        if buf.len() < 4 {
            buf.resize(4, 0);
        }
        let mid = buf.len() / 2;
        let (mut left, mut right) = (buf[..mid].to_vec(), buf[mid..].to_vec());
        for i in 0..4 {
            let f = self.round(i, &right, left.len());
            for (l, fb) in left.iter_mut().zip(&f) {
                *l ^= fb;
            }
            std::mem::swap(&mut left, &mut right);
        }
        let mut out = left;
        out.extend_from_slice(&right);
        out
    }

    /// Inverts [`DetKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`DetError`] if the ciphertext was not produced by this key
    /// (detected via the embedded length prefix being inconsistent).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, DetError> {
        if ciphertext.len() < 4 {
            return Err(DetError);
        }
        let mid = ciphertext.len() / 2;
        let (mut left, mut right) = (ciphertext[..mid].to_vec(), ciphertext[mid..].to_vec());
        for i in (0..4).rev() {
            std::mem::swap(&mut left, &mut right);
            let f = self.round(i, &right, left.len());
            for (l, fb) in left.iter_mut().zip(&f) {
                *l ^= fb;
            }
        }
        let mut buf = left;
        buf.extend_from_slice(&right);
        let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        if len + 2 > buf.len() {
            return Err(DetError);
        }
        // All padding bytes beyond the declared length must be zero.
        if buf[2 + len..].iter().any(|&b| b != 0) {
            return Err(DetError);
        }
        Ok(buf[2..2 + len].to_vec())
    }
}

/// Failure decrypting a deterministic ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetError;

impl fmt::Display for DetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("deterministic ciphertext is malformed for this key")
    }
}

impl std::error::Error for DetError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> DetKey {
        DetKey::derive(b"det master")
    }

    #[test]
    fn round_trip_various_lengths() {
        let k = key();
        for n in [0usize, 1, 2, 3, 4, 5, 16, 17, 100, 1000] {
            let pt: Vec<u8> = (0..n).map(|i| (i * 7 % 256) as u8).collect();
            let ct = k.encrypt(&pt);
            assert_eq!(k.decrypt(&ct).unwrap(), pt, "length {n}");
        }
    }

    #[test]
    fn deterministic_equality() {
        let k = key();
        assert_eq!(k.encrypt(b"samekey"), k.encrypt(b"samekey"));
        assert_ne!(k.encrypt(b"samekey"), k.encrypt(b"samekeZ"));
    }

    #[test]
    fn different_keys_differ() {
        let k1 = key();
        let k2 = DetKey::derive(b"other det master");
        assert_ne!(k1.encrypt(b"hello"), k2.encrypt(b"hello"));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let k = key();
        let ct = k.encrypt(b"hello world, this is a key");
        // The ciphertext must not contain the plaintext as a substring.
        assert!(!ct.windows(5).any(|w| w == b"hello" || w == b"world"));
    }

    #[test]
    fn wrong_key_decrypt_fails_or_differs() {
        let k1 = key();
        let k2 = DetKey::derive(b"other det master");
        let ct = k1.encrypt(b"payload");
        match k2.decrypt(&ct) {
            Err(DetError) => {}
            Ok(pt) => assert_ne!(pt, b"payload"),
        }
    }

    #[test]
    fn short_ciphertext_rejected() {
        assert_eq!(key().decrypt(b"abc"), Err(DetError));
    }
}
