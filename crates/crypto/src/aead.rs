//! Authenticated encryption with associated data (AEAD).
//!
//! The paper's implementation uses the SGX SDK's
//! `sgx_rijndael128gcm_encrypt`. AES-GCM is not available in the offline
//! crate set, so this module provides an equivalent *encrypt-then-MAC*
//! construction built from the primitives in this crate:
//!
//! * keystream: SHA-256 in counter mode keyed by an encryption subkey
//!   (a standard PRF-as-stream-cipher construction),
//! * integrity: HMAC-SHA256 over `nonce ‖ associated data ‖ ciphertext`
//!   with an independent MAC subkey.
//!
//! The construction is IND-CCA secure assuming SHA-256 is a PRF, which is
//! the same assumption level the protocol analysis in the paper needs. The
//! substitution is recorded in DESIGN.md §1.

use std::fmt;

use crate::digest::Digest;
use crate::hmac::{hmac_sha256, verify_tag, HmacSha256};
use crate::sha256::sha256_concat;

/// Byte length of AEAD nonces.
pub const NONCE_LEN: usize = 12;
/// Byte length of authentication tags.
pub const TAG_LEN: usize = 32;

/// A symmetric AEAD key.
///
/// Internally derives independent encryption and MAC subkeys so that the
/// encrypt-then-MAC composition is standard.
#[derive(Clone)]
pub struct AeadKey {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("AeadKey(..)")
    }
}

impl AeadKey {
    /// Derives an AEAD key from arbitrary key material.
    pub fn derive(master: &[u8]) -> Self {
        let enc = hmac_sha256(master, b"elsm/aead/enc");
        let mac = hmac_sha256(master, b"elsm/aead/mac");
        AeadKey { enc_key: enc.into_bytes(), mac_key: mac.into_bytes() }
    }

    fn keystream_block(&self, nonce: &[u8; NONCE_LEN], counter: u64) -> Digest {
        sha256_concat(&[&self.enc_key, nonce, &counter.to_be_bytes()])
    }

    fn xor_keystream(&self, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(32).enumerate() {
            let ks = self.keystream_block(nonce, block_idx as u64);
            for (b, k) in chunk.iter_mut().zip(ks.as_bytes()) {
                *b ^= k;
            }
        }
    }

    /// Encrypts `plaintext` with the given `nonce` and associated data,
    /// returning `ciphertext ‖ tag`.
    ///
    /// Nonces must not repeat under the same key for distinct messages.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.xor_keystream(nonce, &mut out);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(&out);
        let tag = mac.finalize();
        out.extend_from_slice(tag.as_bytes());
        out
    }

    /// Decrypts and authenticates `ciphertext ‖ tag`.
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] when the tag does not verify (forged or
    /// corrupted ciphertext, wrong AAD, wrong nonce) or when the input is
    /// shorter than a tag.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(AeadError);
        }
        let split = ciphertext_and_tag.len() - TAG_LEN;
        let (ct, tag_bytes) = ciphertext_and_tag.split_at(split);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(ct);
        let expect = mac.finalize();
        let mut tag = [0u8; 32];
        tag.copy_from_slice(tag_bytes);
        if !verify_tag(&expect, &Digest::from_bytes(tag)) {
            return Err(AeadError);
        }
        let mut out = ct.to_vec();
        self.xor_keystream(nonce, &mut out);
        Ok(out)
    }
}

/// Deterministically derives a nonce from a 96-bit-truncated counter; used
/// for file blocks where each (file id, block number) pair is unique.
pub fn nonce_from_u64s(a: u64, b: u32) -> [u8; NONCE_LEN] {
    let mut n = [0u8; NONCE_LEN];
    n[..8].copy_from_slice(&a.to_be_bytes());
    n[8..].copy_from_slice(&b.to_be_bytes());
    n
}

/// Authentication failure during [`AeadKey::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl fmt::Display for AeadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("aead authentication failed")
    }
}

impl std::error::Error for AeadError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        AeadKey::derive(b"test master key")
    }

    #[test]
    fn round_trip() {
        let k = key();
        let n = nonce_from_u64s(1, 2);
        let ct = k.seal(&n, b"aad", b"secret payload");
        assert_eq!(k.open(&n, b"aad", &ct).unwrap(), b"secret payload");
    }

    #[test]
    fn empty_plaintext_round_trip() {
        let k = key();
        let n = nonce_from_u64s(0, 0);
        let ct = k.seal(&n, b"", b"");
        assert_eq!(ct.len(), TAG_LEN);
        assert_eq!(k.open(&n, b"", &ct).unwrap(), b"");
    }

    #[test]
    fn tamper_detected() {
        let k = key();
        let n = nonce_from_u64s(3, 4);
        let mut ct = k.seal(&n, b"", b"data that matters");
        ct[0] ^= 1;
        assert_eq!(k.open(&n, b"", &ct), Err(AeadError));
    }

    #[test]
    fn tag_tamper_detected() {
        let k = key();
        let n = nonce_from_u64s(3, 4);
        let mut ct = k.seal(&n, b"", b"data");
        let last = ct.len() - 1;
        ct[last] ^= 0x80;
        assert_eq!(k.open(&n, b"", &ct), Err(AeadError));
    }

    #[test]
    fn wrong_aad_rejected() {
        let k = key();
        let n = nonce_from_u64s(5, 6);
        let ct = k.seal(&n, b"block=1", b"data");
        assert_eq!(k.open(&n, b"block=2", &ct), Err(AeadError));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let k = key();
        let ct = k.seal(&nonce_from_u64s(1, 0), b"", b"data");
        assert_eq!(k.open(&nonce_from_u64s(2, 0), b"", &ct), Err(AeadError));
    }

    #[test]
    fn wrong_key_rejected() {
        let ct = key().seal(&nonce_from_u64s(1, 0), b"", b"data");
        let other = AeadKey::derive(b"other key");
        assert_eq!(other.open(&nonce_from_u64s(1, 0), b"", &ct), Err(AeadError));
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let k = key();
        let n = nonce_from_u64s(9, 9);
        let pt = vec![0u8; 100];
        let ct = k.seal(&n, b"", &pt);
        assert_ne!(&ct[..100], &pt[..]);
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(key().open(&nonce_from_u64s(0, 0), b"", b"short"), Err(AeadError));
    }

    #[test]
    fn large_payload_round_trip() {
        let k = key();
        let n = nonce_from_u64s(7, 7);
        let pt: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let ct = k.seal(&n, b"big", &pt);
        assert_eq!(k.open(&n, b"big", &ct).unwrap(), pt);
    }
}
