//! # elsm-crypto
//!
//! Cryptographic substrate for the eLSM reproduction ("Authenticated
//! Key-Value Stores with Hardware Enclaves", Tang et al., MIDDLEWARE 2021).
//!
//! The paper relies on the Intel SGX SDK for hashing, AEAD
//! (`sgx_rijndael128gcm_encrypt`), deterministic encryption of data keys and
//! order-preserving encryption for range queries. The offline crate set
//! contains no cryptography, so every primitive is implemented here from its
//! specification:
//!
//! * [`sha256`](mod@crate::sha256) — FIPS 180-4 SHA-256 (NIST vectors in tests),
//! * [`hmac`] — RFC 2104 HMAC-SHA256 (RFC 4231 vectors in tests),
//! * [`aead`] — encrypt-then-MAC AEAD (stream cipher from SHA-256-CTR),
//! * [`det`] — deterministic encryption via a 4-round Feistel PRP,
//! * [`ope`] — keyed order-preserving encoding for range-queryable keys.
//!
//! The [`Digest`] newtype is the hash value used by every Merkle structure
//! in the workspace.
//!
//! # Examples
//!
//! ```
//! use elsm_crypto::{sha256::sha256, hmac::hmac_sha256};
//!
//! let record_digest = sha256(b"key=value,ts=7");
//! let tag = hmac_sha256(b"session key", record_digest.as_bytes());
//! assert_eq!(tag.as_bytes().len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod det;
pub mod digest;
pub mod hmac;
pub mod ope;
pub mod sha256;

pub use aead::{AeadError, AeadKey};
pub use det::{DetError, DetKey};
pub use digest::{Digest, ParseDigestError};
pub use ope::OpeKey;
pub use sha256::{sha256, sha256_concat, Sha256};

/// SHA-256 block size in bytes; cost-model consumers in `sgx-sim` charge
/// hashing time per block of this size.
pub const HASH_BLOCK_BYTES: usize = 64;
