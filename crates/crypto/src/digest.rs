//! The 32-byte digest type used throughout the eLSM reproduction.

use std::fmt;

/// A 256-bit cryptographic digest (SHA-256 output).
///
/// This is the hash type flowing through every Merkle tree, hash chain and
/// sealed structure in the repository. It is deliberately a newtype over
/// `[u8; 32]` so digests cannot be confused with raw keys or values
/// (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use elsm_crypto::{sha256::sha256, Digest};
///
/// let d = sha256(b"record");
/// let again = Digest::from_hex(&d.to_hex()).unwrap();
/// assert_eq!(d, again);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as the digest of an empty structure.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Wraps raw bytes as a digest.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Returns true when this is the designated empty digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Lowercase hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] when the input is not exactly 64 hex
    /// characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return Err(ParseDigestError);
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            let hi = (bytes[2 * i] as char).to_digit(16).ok_or(ParseDigestError)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16).ok_or(ParseDigestError)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(Digest(out))
    }

    /// A short 8-hex-character prefix, handy in debug output.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Error returned by [`Digest::from_hex`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError;

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("digest must be exactly 64 hex characters")
    }
}

impl std::error::Error for ParseDigestError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("abc"), Err(ParseDigestError));
        assert_eq!(Digest::from_hex(&"g".repeat(64)), Err(ParseDigestError));
    }

    #[test]
    fn zero_is_zero() {
        assert!(Digest::ZERO.is_zero());
        assert!(!sha256(b"x").is_zero());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Digest::ZERO).is_empty());
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Digest::from_bytes([0u8; 32]);
        let mut b = [0u8; 32];
        b[31] = 1;
        assert!(a < Digest::from_bytes(b));
    }
}
