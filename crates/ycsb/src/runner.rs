//! The load/run driver (§6.1): "YCSB framework works in two phases: the
//! load phase when it initializes the system by populating the dataset, and
//! the evaluation phase when it drives the target workload to the system
//! and measures the performance."
//!
//! Latency is measured on the platform's virtual clock, so every number
//! reflects the cost model (EPC paging, world switches, disk, hashing) and
//! nothing else.

use std::sync::Arc;

use rand::Rng;
use sgx_sim::Platform;

use crate::generator::{format_key, make_value, seeded_rng, KeyChooser};
use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::workload::{Op, Workload};

/// Adapter over any key-value store the harness drives.
pub trait KvDriver {
    /// Inserts or updates a record.
    fn put(&self, key: &[u8], value: &[u8]);
    /// Point read; returns whether the key was found.
    fn get(&self, key: &[u8]) -> bool;
    /// Range scan; returns the number of records.
    fn scan(&self, from: &[u8], to: &[u8]) -> usize;
    /// Inserts or updates a whole batch in one store-level operation.
    ///
    /// The default forwards record by record — exactly the singleton write
    /// path, so stores without a batch entry point measure honestly. Stores
    /// with a group-commit pipeline override this with their real batch
    /// API (one enclave transition, one WAL append for the whole batch).
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        for (key, value) in items {
            self.put(key, value);
        }
    }
}

/// Registry-backed per-operation recording shared by the run phases: an
/// always-live op counter plus latency histograms (nanoseconds,
/// power-of-two buckets) for all, read-side and write-side operations.
///
/// Histograms obey the registry's enabled gate and charge no virtual
/// time, so an instrumented run and an uninstrumented run of the same
/// workload see identical virtual clocks — the property the telemetry
/// overhead test pins.
#[derive(Debug, Clone)]
pub struct OpRecorder {
    ops: telemetry::Counter,
    op_ns: telemetry::Histogram,
    read_ns: telemetry::Histogram,
    write_ns: telemetry::Histogram,
}

impl OpRecorder {
    /// Registers the `ycsb.*` series on `telemetry`.
    pub fn new(telemetry: &telemetry::Telemetry) -> Self {
        OpRecorder {
            ops: telemetry.counter("ycsb.ops"),
            op_ns: telemetry.histogram("ycsb.op_ns"),
            read_ns: telemetry.histogram("ycsb.read_ns"),
            write_ns: telemetry.histogram("ycsb.write_ns"),
        }
    }

    /// Records one operation of `ns` virtual latency; `read_side`
    /// follows the report's read/write split (scans read, RMW writes).
    pub(crate) fn record(&self, ns: u64, read_side: bool) {
        self.ops.inc();
        self.op_ns.observe(ns);
        if read_side {
            self.read_ns.observe(ns);
        } else {
            self.write_ns.observe(ns);
        }
    }
}

/// Outcome of a run phase.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Overall per-operation latency summary.
    pub overall: LatencySummary,
    /// Read-only latency summary.
    pub reads: LatencySummary,
    /// Write (update+insert) latency summary.
    pub writes: LatencySummary,
    /// Operations executed.
    pub ops: u64,
    /// Fraction of reads that found their key.
    pub read_hit_rate: f64,
}

/// Loads `record_count` records (the YCSB load phase).
pub fn load_phase(driver: &dyn KvDriver, record_count: u64, value_len: usize) {
    for i in 0..record_count {
        driver.put(&format_key(i), &make_value(i, value_len));
    }
}

/// Runs `ops` operations of `workload` against `driver`, measuring each on
/// the virtual clock. `record_count` must match the load phase.
pub fn run_phase(
    driver: &dyn KvDriver,
    platform: &Arc<Platform>,
    workload: &Workload,
    record_count: u64,
    ops: u64,
    seed: u64,
) -> RunReport {
    run_phase_with_telemetry(
        driver,
        platform,
        workload,
        record_count,
        ops,
        seed,
        &telemetry::Telemetry::default(),
    )
}

/// [`run_phase`] that also records every operation's latency into the
/// registry's `ycsb.*` series (see [`OpRecorder`]).
#[allow(clippy::too_many_arguments)]
pub fn run_phase_with_telemetry(
    driver: &dyn KvDriver,
    platform: &Arc<Platform>,
    workload: &Workload,
    record_count: u64,
    ops: u64,
    seed: u64,
    telemetry: &telemetry::Telemetry,
) -> RunReport {
    let recorder = OpRecorder::new(telemetry);
    let mut rng = seeded_rng(seed);
    let chooser = KeyChooser::by_name(&workload.distribution, record_count.max(1));
    let mut insert_cursor = record_count;
    let mut overall = LatencyHistogram::new();
    let mut reads = LatencyHistogram::new();
    let mut writes = LatencyHistogram::new();
    let mut read_hits = 0u64;
    let mut read_total = 0u64;
    for _ in 0..ops {
        let op = workload.next_op(&mut rng);
        let sw = platform.clock().stopwatch();
        match op {
            Op::Read => {
                let i = chooser.next(&mut rng, insert_cursor, insert_cursor);
                read_total += 1;
                if driver.get(&format_key(i)) {
                    read_hits += 1;
                }
                let ns = sw.elapsed_ns(platform.clock());
                recorder.record(ns, true);
                overall.record_ns(ns);
                reads.record_ns(ns);
            }
            Op::Update => {
                let i = chooser.next(&mut rng, insert_cursor, insert_cursor);
                let len = workload.draw_value_len(&mut rng);
                driver.put(&format_key(i), &make_value(i, len));
                let ns = sw.elapsed_ns(platform.clock());
                recorder.record(ns, false);
                overall.record_ns(ns);
                writes.record_ns(ns);
            }
            Op::Insert => {
                let i = insert_cursor;
                insert_cursor += 1;
                let len = workload.draw_value_len(&mut rng);
                driver.put(&format_key(i), &make_value(i, len));
                let ns = sw.elapsed_ns(platform.clock());
                recorder.record(ns, false);
                overall.record_ns(ns);
                writes.record_ns(ns);
            }
            Op::Scan => {
                let i = chooser.next(&mut rng, insert_cursor, insert_cursor);
                let len = rng.gen_range(1..=workload.max_scan_len as u64);
                let to = (i + len).min(insert_cursor.saturating_sub(1));
                driver.scan(&format_key(i), &format_key(to));
                let ns = sw.elapsed_ns(platform.clock());
                recorder.record(ns, true);
                overall.record_ns(ns);
                reads.record_ns(ns);
            }
            Op::ReadModifyWrite => {
                let i = chooser.next(&mut rng, insert_cursor, insert_cursor);
                let key = format_key(i);
                read_total += 1;
                if driver.get(&key) {
                    read_hits += 1;
                }
                let len = workload.draw_value_len(&mut rng);
                driver.put(&key, &make_value(i, len));
                let ns = sw.elapsed_ns(platform.clock());
                recorder.record(ns, false);
                overall.record_ns(ns);
                writes.record_ns(ns);
            }
        }
    }
    RunReport {
        workload: workload.name.clone(),
        overall: overall.summary(),
        reads: reads.summary(),
        writes: writes.summary(),
        ops,
        read_hit_rate: if read_total == 0 { 1.0 } else { read_hits as f64 / read_total as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// In-memory reference driver charging a fixed per-op cost.
    struct MapDriver {
        platform: Arc<Platform>,
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        read_cost_ns: u64,
        write_cost_ns: u64,
    }

    impl KvDriver for MapDriver {
        fn put(&self, key: &[u8], value: &[u8]) {
            self.platform.advance(self.write_cost_ns);
            self.map.lock().insert(key.to_vec(), value.to_vec());
        }
        fn get(&self, key: &[u8]) -> bool {
            self.platform.advance(self.read_cost_ns);
            self.map.lock().contains_key(key)
        }
        fn scan(&self, from: &[u8], to: &[u8]) -> usize {
            self.platform.advance(self.read_cost_ns * 3);
            self.map.lock().range(from.to_vec()..=to.to_vec()).count()
        }
    }

    fn driver(read_ns: u64, write_ns: u64) -> (MapDriver, Arc<Platform>) {
        let platform = Platform::with_defaults();
        (
            MapDriver {
                platform: platform.clone(),
                map: Mutex::new(BTreeMap::new()),
                read_cost_ns: read_ns,
                write_cost_ns: write_ns,
            },
            platform,
        )
    }

    #[test]
    fn load_then_reads_hit() {
        let (d, p) = driver(1_000, 2_000);
        load_phase(&d, 1000, 100);
        let report = run_phase(&d, &p, &Workload::c(), 1000, 2000, 42);
        assert_eq!(report.ops, 2000);
        assert!(report.read_hit_rate > 0.999, "all loaded keys must hit");
        assert!((report.overall.mean_us - 1.0).abs() < 0.1, "{:?}", report.overall);
    }

    #[test]
    fn mixed_workload_latency_blends_costs() {
        let (d, p) = driver(1_000, 9_000);
        load_phase(&d, 500, 100);
        let report = run_phase(&d, &p, &Workload::read_ratio(50), 500, 4000, 7);
        // Mean should sit between read and write cost.
        assert!(
            report.overall.mean_us > 2.0 && report.overall.mean_us < 8.0,
            "{:?}",
            report.overall
        );
        assert!(report.reads.mean_us < report.writes.mean_us);
    }

    #[test]
    fn inserts_extend_keyspace() {
        let (d, p) = driver(100, 100);
        load_phase(&d, 100, 10);
        run_phase(&d, &p, &Workload::d(), 100, 2000, 1);
        assert!(d.map.lock().len() > 100, "workload D inserts new keys");
    }

    #[test]
    fn deterministic_given_seed() {
        let (d1, p1) = driver(1_000, 2_000);
        load_phase(&d1, 200, 10);
        let r1 = run_phase(&d1, &p1, &Workload::a(), 200, 1000, 99);
        let (d2, p2) = driver(1_000, 2_000);
        load_phase(&d2, 200, 10);
        let r2 = run_phase(&d2, &p2, &Workload::a(), 200, 1000, 99);
        assert_eq!(r1.overall, r2.overall, "same seed, same virtual latencies");
    }
}
