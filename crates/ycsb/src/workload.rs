//! YCSB core workloads A–F plus parameterized mixes.

use rand::rngs::StdRng;
use rand::Rng;

/// One operation drawn from a workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of an existing key.
    Read,
    /// Overwrite of an existing key.
    Update,
    /// Insert of a fresh key.
    Insert,
    /// Short range scan.
    Scan,
    /// Read-modify-write of an existing key.
    ReadModifyWrite,
}

/// A workload specification (operation mix + key distribution).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name ("A", "B", … or "read70").
    pub name: String,
    /// Percent of reads.
    pub read_pct: u32,
    /// Percent of updates.
    pub update_pct: u32,
    /// Percent of inserts.
    pub insert_pct: u32,
    /// Percent of scans.
    pub scan_pct: u32,
    /// Percent of read-modify-writes.
    pub rmw_pct: u32,
    /// Key distribution name: "uniform", "zipfian" or "latest".
    pub distribution: String,
    /// Value size in bytes (YCSB default field set ≈ 100 bytes in the
    /// paper's configuration).
    pub value_len: usize,
    /// Maximum scan length in keys.
    pub max_scan_len: usize,
}

impl Workload {
    fn mix(name: &str, r: u32, u: u32, i: u32, s: u32, m: u32, dist: &str) -> Self {
        debug_assert_eq!(r + u + i + s + m, 100);
        Workload {
            name: name.to_string(),
            read_pct: r,
            update_pct: u,
            insert_pct: i,
            scan_pct: s,
            rmw_pct: m,
            distribution: dist.to_string(),
            value_len: 100,
            max_scan_len: 20,
        }
    }

    /// Workload A: 50 % reads, 50 % updates, zipfian (update heavy).
    pub fn a() -> Self {
        Self::mix("A", 50, 50, 0, 0, 0, "zipfian")
    }

    /// Workload B: 95 % reads, 5 % updates, zipfian (read heavy).
    pub fn b() -> Self {
        Self::mix("B", 95, 5, 0, 0, 0, "zipfian")
    }

    /// Workload C: 100 % reads, zipfian (read only).
    pub fn c() -> Self {
        Self::mix("C", 100, 0, 0, 0, 0, "zipfian")
    }

    /// Workload D: 95 % reads of recent keys, 5 % inserts (read latest).
    pub fn d() -> Self {
        Self::mix("D", 95, 0, 5, 0, 0, "latest")
    }

    /// Workload E: 95 % short scans, 5 % inserts (scan heavy).
    pub fn e() -> Self {
        Self::mix("E", 0, 0, 5, 95, 0, "zipfian")
    }

    /// Workload F: 50 % reads, 50 % read-modify-writes, zipfian.
    pub fn f() -> Self {
        Self::mix("F", 50, 0, 0, 0, 50, "zipfian")
    }

    /// The paper's Figure 5a sweep: `read_pct` reads, rest updates,
    /// uniform keys.
    pub fn read_ratio(read_pct: u32) -> Self {
        Self::mix(&format!("read{read_pct}"), read_pct, 100 - read_pct, 0, 0, 0, "uniform")
    }

    /// Same mix with a different key distribution (Figure 5c).
    pub fn with_distribution(mut self, dist: &str) -> Self {
        self.distribution = dist.to_string();
        self
    }

    /// Same mix with a different value size.
    pub fn with_value_len(mut self, len: usize) -> Self {
        self.value_len = len;
        self
    }

    /// Draws the next operation type.
    pub fn next_op(&self, rng: &mut StdRng) -> Op {
        let x = rng.gen_range(0..100u32);
        if x < self.read_pct {
            Op::Read
        } else if x < self.read_pct + self.update_pct {
            Op::Update
        } else if x < self.read_pct + self.update_pct + self.insert_pct {
            Op::Insert
        } else if x < self.read_pct + self.update_pct + self.insert_pct + self.scan_pct {
            Op::Scan
        } else {
            Op::ReadModifyWrite
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::seeded_rng;

    #[test]
    fn standard_mixes_sum_to_100() {
        for w in [
            Workload::a(),
            Workload::b(),
            Workload::c(),
            Workload::d(),
            Workload::e(),
            Workload::f(),
        ] {
            assert_eq!(
                w.read_pct + w.update_pct + w.insert_pct + w.scan_pct + w.rmw_pct,
                100,
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn op_mix_matches_spec() {
        let w = Workload::a();
        let mut rng = seeded_rng(1);
        let mut reads = 0;
        let n = 100_000;
        for _ in 0..n {
            if w.next_op(&mut rng) == Op::Read {
                reads += 1;
            }
        }
        let pct = reads * 100 / n;
        assert!((48..=52).contains(&pct), "A should be ~50% reads, got {pct}%");
    }

    #[test]
    fn read_ratio_sweep() {
        let w = Workload::read_ratio(70);
        assert_eq!(w.read_pct, 70);
        assert_eq!(w.update_pct, 30);
        assert_eq!(w.distribution, "uniform");
    }

    #[test]
    fn workload_c_is_read_only() {
        let w = Workload::c();
        let mut rng = seeded_rng(2);
        for _ in 0..1000 {
            assert_eq!(w.next_op(&mut rng), Op::Read);
        }
    }

    #[test]
    fn workload_e_scans() {
        let w = Workload::e();
        let mut rng = seeded_rng(3);
        let scans = (0..1000).filter(|_| w.next_op(&mut rng) == Op::Scan).count();
        assert!(scans > 900);
    }
}
