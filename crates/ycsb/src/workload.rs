//! YCSB core workloads A–F plus parameterized mixes.

use rand::rngs::StdRng;
use rand::Rng;

/// One operation drawn from a workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of an existing key.
    Read,
    /// Overwrite of an existing key.
    Update,
    /// Insert of a fresh key.
    Insert,
    /// Short range scan.
    Scan,
    /// Read-modify-write of an existing key.
    ReadModifyWrite,
}

/// Distribution of generated value sizes (bytes).
///
/// The classic YCSB field set is a fixed ~100 B payload; real deployments
/// mix small and large values, which is exactly the regime key-value
/// separation targets. `Uniform` and `Zipfian` draw from a `[min, max]`
/// byte range; `Zipfian` makes *small* sizes popular (the long-tail shape
/// of production stores: most values tiny, a heavy tail of big ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSizeDist {
    /// Every value is exactly this many bytes.
    Fixed(usize),
    /// Uniformly random length in `[min, max]`.
    Uniform {
        /// Smallest value length.
        min: usize,
        /// Largest value length.
        max: usize,
    },
    /// Skewed toward `min`: the range splits into geometric buckets and
    /// bucket ranks are drawn with harmonic (θ = 1 Zipf) weights, so the
    /// smallest bucket is the hottest and each doubling of size is
    /// roughly half as likely.
    Zipfian {
        /// Smallest value length.
        min: usize,
        /// Largest value length.
        max: usize,
    },
}

impl ValueSizeDist {
    /// Parses `"fixed:N"`, `"uniform:MIN-MAX"` or `"zipfian:MIN-MAX"`.
    ///
    /// # Panics
    ///
    /// Panics on malformed specs (the CLI surfaces the spec verbatim).
    pub fn by_name(spec: &str) -> Self {
        let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
        let range = || {
            let (lo, hi) = rest.split_once('-').expect("expected MIN-MAX byte range");
            (lo.parse().expect("bad min"), hi.parse().expect("bad max"))
        };
        match kind {
            "fixed" => ValueSizeDist::Fixed(rest.parse().expect("bad fixed length")),
            "uniform" => {
                let (min, max) = range();
                ValueSizeDist::Uniform { min, max }
            }
            "zipfian" => {
                let (min, max) = range();
                ValueSizeDist::Zipfian { min, max }
            }
            other => panic!("unknown value-size distribution {other:?}"),
        }
    }

    /// Draws one value length.
    pub fn draw(&self, rng: &mut StdRng) -> usize {
        match *self {
            ValueSizeDist::Fixed(len) => len,
            ValueSizeDist::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
            ValueSizeDist::Zipfian { min, max } => {
                const BUCKETS: i32 = 8;
                // Harmonic rank weights: P(rank r) ∝ 1/(r+1).
                let total: f64 = (0..BUCKETS).map(|r| 1.0 / (r + 1) as f64).sum();
                let mut u = rng.gen::<f64>() * total;
                let mut rank = BUCKETS - 1;
                for r in 0..BUCKETS {
                    u -= 1.0 / (r + 1) as f64;
                    if u <= 0.0 {
                        rank = r;
                        break;
                    }
                }
                // Geometric bucket bounds over [min, max]: bucket r spans
                // sizes proportional to [2^r - 1, 2^(r+1) - 1).
                let span = (max.max(min) - min) as f64;
                let denom = 2f64.powi(BUCKETS) - 1.0;
                let lo = min + (span * (2f64.powi(rank) - 1.0) / denom) as usize;
                let hi = min + (span * (2f64.powi(rank + 1) - 1.0) / denom) as usize;
                rng.gen_range(lo..=hi.max(lo))
            }
        }
    }
}

/// A workload specification (operation mix + key distribution).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name ("A", "B", … or "read70").
    pub name: String,
    /// Percent of reads.
    pub read_pct: u32,
    /// Percent of updates.
    pub update_pct: u32,
    /// Percent of inserts.
    pub insert_pct: u32,
    /// Percent of scans.
    pub scan_pct: u32,
    /// Percent of read-modify-writes.
    pub rmw_pct: u32,
    /// Key distribution name: "uniform", "zipfian" or "latest".
    pub distribution: String,
    /// Value size in bytes (YCSB default field set ≈ 100 bytes in the
    /// paper's configuration). Used when `value_dist` is `None`.
    pub value_len: usize,
    /// Optional value-size distribution; overrides `value_len` when set.
    pub value_dist: Option<ValueSizeDist>,
    /// Maximum scan length in keys.
    pub max_scan_len: usize,
}

impl Workload {
    fn mix(name: &str, r: u32, u: u32, i: u32, s: u32, m: u32, dist: &str) -> Self {
        debug_assert_eq!(r + u + i + s + m, 100);
        Workload {
            name: name.to_string(),
            read_pct: r,
            update_pct: u,
            insert_pct: i,
            scan_pct: s,
            rmw_pct: m,
            distribution: dist.to_string(),
            value_len: 100,
            value_dist: None,
            max_scan_len: 20,
        }
    }

    /// Workload A: 50 % reads, 50 % updates, zipfian (update heavy).
    pub fn a() -> Self {
        Self::mix("A", 50, 50, 0, 0, 0, "zipfian")
    }

    /// Workload B: 95 % reads, 5 % updates, zipfian (read heavy).
    pub fn b() -> Self {
        Self::mix("B", 95, 5, 0, 0, 0, "zipfian")
    }

    /// Workload C: 100 % reads, zipfian (read only).
    pub fn c() -> Self {
        Self::mix("C", 100, 0, 0, 0, 0, "zipfian")
    }

    /// Workload D: 95 % reads of recent keys, 5 % inserts (read latest).
    pub fn d() -> Self {
        Self::mix("D", 95, 0, 5, 0, 0, "latest")
    }

    /// Workload E: 95 % short scans, 5 % inserts (scan heavy).
    pub fn e() -> Self {
        Self::mix("E", 0, 0, 5, 95, 0, "zipfian")
    }

    /// Workload F: 50 % reads, 50 % read-modify-writes, zipfian.
    pub fn f() -> Self {
        Self::mix("F", 50, 0, 0, 0, 50, "zipfian")
    }

    /// The paper's Figure 5a sweep: `read_pct` reads, rest updates,
    /// uniform keys.
    pub fn read_ratio(read_pct: u32) -> Self {
        Self::mix(&format!("read{read_pct}"), read_pct, 100 - read_pct, 0, 0, 0, "uniform")
    }

    /// Same mix with a different key distribution (Figure 5c).
    pub fn with_distribution(mut self, dist: &str) -> Self {
        self.distribution = dist.to_string();
        self
    }

    /// Same mix with a different value size.
    pub fn with_value_len(mut self, len: usize) -> Self {
        self.value_len = len;
        self
    }

    /// Same mix drawing value sizes from `dist` instead of the fixed
    /// `value_len`.
    pub fn with_value_dist(mut self, dist: ValueSizeDist) -> Self {
        self.value_dist = Some(dist);
        self
    }

    /// Draws the value length for the next write: the configured
    /// distribution when set, the fixed `value_len` otherwise.
    pub fn draw_value_len(&self, rng: &mut StdRng) -> usize {
        match self.value_dist {
            Some(dist) => dist.draw(rng),
            None => self.value_len,
        }
    }

    /// Draws the next operation type.
    pub fn next_op(&self, rng: &mut StdRng) -> Op {
        let x = rng.gen_range(0..100u32);
        if x < self.read_pct {
            Op::Read
        } else if x < self.read_pct + self.update_pct {
            Op::Update
        } else if x < self.read_pct + self.update_pct + self.insert_pct {
            Op::Insert
        } else if x < self.read_pct + self.update_pct + self.insert_pct + self.scan_pct {
            Op::Scan
        } else {
            Op::ReadModifyWrite
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::seeded_rng;

    #[test]
    fn standard_mixes_sum_to_100() {
        for w in [
            Workload::a(),
            Workload::b(),
            Workload::c(),
            Workload::d(),
            Workload::e(),
            Workload::f(),
        ] {
            assert_eq!(
                w.read_pct + w.update_pct + w.insert_pct + w.scan_pct + w.rmw_pct,
                100,
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn op_mix_matches_spec() {
        let w = Workload::a();
        let mut rng = seeded_rng(1);
        let mut reads = 0;
        let n = 100_000;
        for _ in 0..n {
            if w.next_op(&mut rng) == Op::Read {
                reads += 1;
            }
        }
        let pct = reads * 100 / n;
        assert!((48..=52).contains(&pct), "A should be ~50% reads, got {pct}%");
    }

    #[test]
    fn read_ratio_sweep() {
        let w = Workload::read_ratio(70);
        assert_eq!(w.read_pct, 70);
        assert_eq!(w.update_pct, 30);
        assert_eq!(w.distribution, "uniform");
    }

    #[test]
    fn workload_c_is_read_only() {
        let w = Workload::c();
        let mut rng = seeded_rng(2);
        for _ in 0..1000 {
            assert_eq!(w.next_op(&mut rng), Op::Read);
        }
    }

    #[test]
    fn value_dist_fixed_and_fallback() {
        let mut rng = seeded_rng(4);
        let w = Workload::a();
        assert_eq!(w.draw_value_len(&mut rng), 100, "no dist falls back to value_len");
        let w = Workload::a().with_value_dist(ValueSizeDist::Fixed(16 * 1024));
        for _ in 0..10 {
            assert_eq!(w.draw_value_len(&mut rng), 16 * 1024);
        }
    }

    #[test]
    fn value_dist_uniform_stays_in_range_and_spreads() {
        let mut rng = seeded_rng(5);
        let d = ValueSizeDist::Uniform { min: 1024, max: 102_400 };
        let draws: Vec<usize> = (0..10_000).map(|_| d.draw(&mut rng)).collect();
        assert!(draws.iter().all(|&l| (1024..=102_400).contains(&l)));
        let mean = draws.iter().sum::<usize>() / draws.len();
        let mid = (1024 + 102_400) / 2;
        assert!(
            (mean as i64 - mid as i64).unsigned_abs() < 5_000,
            "uniform mean should sit near the midpoint, got {mean}"
        );
    }

    #[test]
    fn value_dist_zipfian_prefers_small_sizes() {
        let mut rng = seeded_rng(6);
        let d = ValueSizeDist::Zipfian { min: 1024, max: 102_400 };
        let draws: Vec<usize> = (0..10_000).map(|_| d.draw(&mut rng)).collect();
        assert!(draws.iter().all(|&l| (1024..=102_400).contains(&l)));
        let small = draws.iter().filter(|&&l| l < 16 * 1024).count();
        assert!(
            small * 100 / draws.len() > 55,
            "small sizes should dominate a zipfian draw, got {}%",
            small * 100 / draws.len()
        );
        let huge = draws.iter().filter(|&&l| l > 64 * 1024).count();
        assert!(huge > 0, "the tail must still appear");
    }

    #[test]
    fn value_dist_parses_by_name() {
        assert_eq!(ValueSizeDist::by_name("fixed:4096"), ValueSizeDist::Fixed(4096));
        assert_eq!(
            ValueSizeDist::by_name("uniform:1024-65536"),
            ValueSizeDist::Uniform { min: 1024, max: 65536 }
        );
        assert_eq!(
            ValueSizeDist::by_name("zipfian:1024-102400"),
            ValueSizeDist::Zipfian { min: 1024, max: 102_400 }
        );
    }

    #[test]
    fn workload_e_scans() {
        let w = Workload::e();
        let mut rng = seeded_rng(3);
        let scans = (0..1000).filter(|_| w.next_op(&mut rng) == Op::Scan).count();
        assert!(scans > 900);
    }
}
