//! Multi-client run phase over a sharded cluster on virtual time.
//!
//! [`crate::concurrent::run_phase_concurrent`] models N clients against
//! *one* store on *one* platform: serial sections exclude, everything
//! else overlaps without bound — the right model for thread scaling on a
//! single machine, but it cannot show what horizontal partitioning buys,
//! because a single simulated enclave never runs out of cores.
//!
//! This module adds the cluster dimension. A sharded driver exposes one
//! [`Platform`] per shard (each shard is its own machine/enclave) plus
//! the router's; the scheduler then models
//!
//! * **per-shard machines**: each shard executes at most
//!   [`ShardPhase::cores_per_shard`] operations concurrently — clients
//!   beyond that queue on the shard's cores (deterministically: the
//!   earliest-free core wins, ties by index);
//! * **per-shard serial classes**: virtual time charged inside a
//!   [`sgx_sim::SerialClass`] section serializes only against that
//!   *shard's* horizon — flushes, compactions and group commits on
//!   different shards overlap freely;
//! * **fan-out ops**: an operation touching several shards (a
//!   cross-shard scan) occupies one core on each involved shard and
//!   completes when the slowest shard does; the router's stitching time
//!   is added serially on the client's timeline.
//!
//! Determinism is preserved: same seed, same schedule, same numbers.

use std::sync::Arc;

use sgx_sim::{Platform, SERIAL_CLASSES};

use crate::concurrent::{Client, ConcurrentReport};
use crate::histogram::LatencyHistogram;
use crate::workload::Workload;
use crate::KvDriver;

/// A [`KvDriver`] over a sharded cluster: the scheduler needs to know
/// the shard topology and each shard's platform to attribute costs.
pub trait ShardedKvDriver: KvDriver {
    /// Number of shards.
    fn shard_count(&self) -> usize;
    /// Shard `i`'s platform (its machine's virtual clock).
    fn shard_platform(&self, shard: usize) -> &Arc<Platform>;
    /// The trusted router's platform (may alias a shard platform for an
    /// unsharded anchor driver).
    fn router_platform(&self) -> &Arc<Platform>;
}

/// Configuration of a sharded run phase.
#[derive(Debug, Clone, Copy)]
pub struct ShardPhase {
    /// Size of the loaded keyspace.
    pub record_count: u64,
    /// Operations across all clients.
    pub total_ops: u64,
    /// Number of virtual client threads (cluster-wide offered load).
    pub threads: usize,
    /// Enclave cores per shard machine: the per-shard concurrency cap.
    /// This is what a single store cannot scale past and a cluster can.
    pub cores_per_shard: usize,
    /// Reproducibility seed.
    pub seed: u64,
}

/// Snapshot of every platform's clock + serial accumulators.
struct Snapshot {
    clock_ns: Vec<u64>,
    serial: Vec<[u64; SERIAL_CLASSES]>,
}

fn snapshot(platforms: &[&Arc<Platform>]) -> Snapshot {
    Snapshot {
        clock_ns: platforms.iter().map(|p| p.clock().now_ns()).collect(),
        serial: platforms.iter().map(|p| p.serial_snapshot()).collect(),
    }
}

/// One shard machine's schedule state: core availability + per-class
/// serial horizons.
struct ShardMachine {
    core_free_at: Vec<u64>,
    lock_free_at: [u64; SERIAL_CLASSES],
}

impl ShardMachine {
    fn new(cores: usize) -> Self {
        ShardMachine { core_free_at: vec![0u64; cores.max(1)], lock_free_at: [0; SERIAL_CLASSES] }
    }

    /// Index of the earliest-free core (deterministic tie-break).
    fn pick_core(&self) -> usize {
        let mut best = 0usize;
        for (i, &free) in self.core_free_at.iter().enumerate() {
            if free < self.core_free_at[best] {
                best = i;
            }
        }
        best
    }
}

/// Runs `phase.total_ops` operations of `workload` spread over
/// `phase.threads` virtual clients against a sharded cluster, modeling
/// per-shard machines with bounded cores (see the module docs).
///
/// Operations execute against `driver` one at a time (the cluster's real
/// code paths run unchanged — including routing, per-shard verification
/// and cross-shard stitching); their virtual costs are read off each
/// shard's own clock and scheduled as concurrent client timelines over
/// the shard machines.
pub fn run_sharded_concurrent(
    driver: &dyn ShardedKvDriver,
    workload: &Workload,
    phase: &ShardPhase,
) -> ConcurrentReport {
    let threads = phase.threads.max(1);
    let per_client = (phase.total_ops / threads as u64).max(1);
    let total_ops = per_client * threads as u64;
    let shard_count = driver.shard_count();
    let platforms: Vec<&Arc<Platform>> = (0..shard_count)
        .map(|s| driver.shard_platform(s))
        .chain(std::iter::once(driver.router_platform()))
        .collect();
    let router_idx = shard_count;
    // An unsharded anchor driver may hand out one platform as both shard
    // and router; its clock delta must then not be double-counted.
    let router_distinct =
        (0..shard_count).all(|s| !Arc::ptr_eq(platforms[s], platforms[router_idx]));

    let mut clients = Client::fleet(threads, phase.seed, workload, phase.record_count, per_client);

    let mut machines: Vec<ShardMachine> =
        (0..shard_count).map(|_| ShardMachine::new(phase.cores_per_shard)).collect();
    let mut overall = LatencyHistogram::new();
    let mut read_hits = 0u64;
    let mut read_total = 0u64;
    let mut charged_total = 0u64;
    let mut charged_serial = 0u64;

    for _ in 0..total_ops {
        let i = (0..clients.len())
            .filter(|&i| clients[i].ops_done < per_client)
            .min_by_key(|&i| (clients[i].t_ns, i))
            .expect("a client with work left");
        let c = &mut clients[i];
        let before = snapshot(&platforms);
        let outcome = c.execute_op(driver, workload, phase.record_count);
        read_total += u64::from(outcome.read);
        read_hits += u64::from(outcome.read && outcome.hit);
        let after = snapshot(&platforms);

        // Per-shard costs of this op: each shard's clock only advances
        // for the work that shard's machine did.
        let router_delta = if router_distinct {
            after.clock_ns[router_idx] - before.clock_ns[router_idx]
        } else {
            0
        };
        let mut span = 0u64; // fan-out completes with the slowest shard
        let mut op_serial = 0u64;
        let mut begin = c.t_ns;
        let mut involved: Vec<(usize, u64, [u64; SERIAL_CLASSES])> = Vec::new();
        for (s, m) in machines.iter().enumerate() {
            let delta = after.clock_ns[s] - before.clock_ns[s];
            if delta == 0 {
                continue;
            }
            span = span.max(delta);
            let serial: [u64; SERIAL_CLASSES] =
                std::array::from_fn(|k| (after.serial[s][k] - before.serial[s][k]).min(delta));
            op_serial = op_serial.max(serial.iter().copied().max().unwrap_or(0));
            begin = begin.max(m.core_free_at[m.pick_core()]);
            for (d, horizon) in serial.iter().zip(m.lock_free_at.iter()) {
                if *d > 0 {
                    begin = begin.max(*horizon);
                }
            }
            involved.push((s, delta, serial));
        }
        let finish = begin + span + router_delta;
        for (s, _, serial) in &involved {
            let m = &mut machines[*s];
            let core = m.pick_core();
            m.core_free_at[core] = finish;
            for (d, horizon) in serial.iter().zip(m.lock_free_at.iter_mut()) {
                if *d > 0 {
                    *horizon = begin + d;
                }
            }
        }
        overall.record_ns(finish - c.t_ns);
        charged_total += span + router_delta;
        charged_serial += op_serial;
        c.t_ns = finish;
        c.ops_done += 1;
    }

    let elapsed_ns = clients.iter().map(|c| c.t_ns).max().unwrap_or(0).max(1);
    ConcurrentReport {
        workload: workload.name.clone(),
        threads,
        ops: total_ops,
        elapsed_us: elapsed_ns as f64 / 1_000.0,
        kops_per_sec: total_ops as f64 / (elapsed_ns as f64 / 1e9) / 1_000.0,
        overall: overall.summary(),
        read_hit_rate: if read_total == 0 { 1.0 } else { read_hits as f64 / read_total as f64 },
        serial_fraction: if charged_total == 0 {
            0.0
        } else {
            charged_serial as f64 / charged_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::format_key;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// A toy cluster: each shard is a map on its own platform; ops cost
    /// `cost_ns` on the owning shard's clock.
    struct ToyCluster {
        platforms: Vec<Arc<Platform>>,
        router: Arc<Platform>,
        maps: Vec<Mutex<BTreeMap<Vec<u8>, Vec<u8>>>>,
        cost_ns: u64,
    }

    impl ToyCluster {
        fn new(shards: usize, cost_ns: u64) -> Self {
            ToyCluster {
                platforms: (0..shards).map(|_| Platform::with_defaults()).collect(),
                router: Platform::with_defaults(),
                maps: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
                cost_ns,
            }
        }

        fn shard_of(&self, key: &[u8]) -> usize {
            key.iter().map(|&b| b as usize).sum::<usize>() % self.maps.len()
        }
    }

    impl KvDriver for ToyCluster {
        fn put(&self, key: &[u8], value: &[u8]) {
            let s = self.shard_of(key);
            self.platforms[s].advance(self.cost_ns);
            self.maps[s].lock().insert(key.to_vec(), value.to_vec());
        }
        fn get(&self, key: &[u8]) -> bool {
            let s = self.shard_of(key);
            self.platforms[s].advance(self.cost_ns);
            self.maps[s].lock().contains_key(key)
        }
        fn scan(&self, from: &[u8], to: &[u8]) -> usize {
            // Fan-out: every shard pays, the router stitches.
            let mut n = 0;
            for (p, m) in self.platforms.iter().zip(&self.maps) {
                p.advance(self.cost_ns);
                n += m.lock().range(from.to_vec()..=to.to_vec()).count();
            }
            self.router.advance(self.cost_ns / 10);
            n
        }
    }

    impl ShardedKvDriver for ToyCluster {
        fn shard_count(&self) -> usize {
            self.maps.len()
        }
        fn shard_platform(&self, shard: usize) -> &Arc<Platform> {
            &self.platforms[shard]
        }
        fn router_platform(&self) -> &Arc<Platform> {
            &self.router
        }
    }

    fn load(c: &ToyCluster, n: u64) {
        for i in 0..n {
            let key = format_key(i);
            let s = c.shard_of(&key);
            c.maps[s].lock().insert(key, b"v".to_vec());
        }
    }

    fn phase(threads: usize, cores: usize) -> ShardPhase {
        ShardPhase {
            record_count: 200,
            total_ops: 2_000,
            threads,
            cores_per_shard: cores,
            seed: 11,
        }
    }

    #[test]
    fn one_shard_caps_at_its_cores() {
        let c = ToyCluster::new(1, 10_000);
        load(&c, 200);
        let r1 = run_sharded_concurrent(&c, &Workload::c(), &phase(1, 2));
        let r8 = run_sharded_concurrent(&c, &Workload::c(), &phase(8, 2));
        let speedup = r8.kops_per_sec / r1.kops_per_sec;
        assert!(
            (1.8..=2.05).contains(&speedup),
            "8 clients on a 2-core shard must cap at ~2x, got {speedup:.2}x"
        );
    }

    #[test]
    fn shards_add_capacity() {
        let run = |shards: usize| {
            let c = ToyCluster::new(shards, 10_000);
            load(&c, 200);
            run_sharded_concurrent(&c, &Workload::c(), &phase(8, 2)).kops_per_sec
        };
        let one = run(1);
        let four = run(4);
        let speedup = four / one;
        assert!(speedup > 2.5, "4 shards x 2 cores should beat a 1-shard cap: {speedup:.2}x");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let c = ToyCluster::new(3, 5_000);
            load(&c, 200);
            run_sharded_concurrent(&c, &Workload::a(), &phase(4, 2))
        };
        let a = run();
        let b = run();
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.kops_per_sec, b.kops_per_sec);
    }

    #[test]
    fn scans_fan_out_and_hit_rate_counts() {
        let c = ToyCluster::new(2, 4_000);
        load(&c, 200);
        let r = run_sharded_concurrent(&c, &Workload::e(), &phase(4, 2));
        assert!(r.ops > 0);
        let rc = run_sharded_concurrent(&c, &Workload::c(), &phase(2, 2));
        assert!(rc.read_hit_rate > 0.999);
    }
}
