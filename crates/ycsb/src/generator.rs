//! YCSB key choosers (Cooper et al., SoCC'10 §4).
//!
//! * [`KeyChooser::Uniform`] — every key equally likely,
//! * [`KeyChooser::Zipfian`] — scrambled Zipfian with the standard
//!   θ = 0.99 constant and the Gray et al. rejection-free sampler,
//! * [`KeyChooser::Latest`] — Zipfian over recency: the most recently
//!   inserted keys are most popular (best temporal locality — the paper's
//!   Figure 5c).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The standard YCSB Zipfian constant.
const ZIPFIAN_THETA: f64 = 0.99;

/// Zipfian sampler over `[0, n)` using the Gray et al. method (the same
/// algorithm as YCSB's `ZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Builds a sampler over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "zipfian needs at least one item");
        let theta = ZIPFIAN_THETA;
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cutoff, then the Euler–Maclaurin integral
        // approximation (keeps construction O(1)-ish for huge n).
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-θ dx from EXACT to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Samples an item rank (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The zeta(2, θ) constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// FNV-based scrambling so popular Zipfian ranks spread over the keyspace
/// (YCSB's ScrambledZipfian).
fn scramble(rank: u64, n: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ rank;
    h = h.wrapping_mul(0x1000_0000_01b3);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h % n
}

/// Distribution of requested keys.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Uniformly random over the loaded keys.
    Uniform,
    /// Scrambled Zipfian (skewed, stable hot set).
    Zipfian(Zipfian),
    /// Zipfian over recency: popularity follows insertion order.
    Latest(Zipfian),
}

impl KeyChooser {
    /// Builds the chooser named by `name` over `n` keys.
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn by_name(name: &str, n: u64) -> Self {
        match name {
            "uniform" => KeyChooser::Uniform,
            "zipfian" => KeyChooser::Zipfian(Zipfian::new(n)),
            "latest" => KeyChooser::Latest(Zipfian::new(n)),
            other => panic!("unknown distribution {other:?}"),
        }
    }

    /// Chooses a key index in `[0, total)`; `insert_cursor` is the number
    /// of keys inserted so far (drives the Latest distribution).
    pub fn next(&self, rng: &mut StdRng, total: u64, insert_cursor: u64) -> u64 {
        match self {
            KeyChooser::Uniform => rng.gen_range(0..total.max(1)),
            KeyChooser::Zipfian(z) => scramble(z.sample(rng), total.max(1)),
            KeyChooser::Latest(z) => {
                let recency = z.sample(rng).min(insert_cursor.saturating_sub(1));
                insert_cursor.saturating_sub(1).saturating_sub(recency) % total.max(1)
            }
        }
    }
}

/// Formats key index `i` as the canonical YCSB key (`user` + zero padding).
pub fn format_key(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

/// Deterministic value bytes of the given length for key index `i`.
pub fn make_value(i: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    while out.len() < len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// A seeded RNG for reproducible workloads.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::new(1000);
        let mut rng = seeded_rng(42);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 must dominate (theory: 1/ζ(1000, .99) ≈ 13 % of draws);
        // the tail must still be reachable.
        assert!(counts[0] > 10_000, "head popularity {}", counts[0]);
        let tail: u32 = counts[500..].iter().sum();
        assert!(tail > 100, "tail must not vanish: {tail}");
        // Monotone-ish decay over decades.
        assert!(counts[0] > counts[10] && counts[10] > counts[100]);
    }

    #[test]
    fn zipfian_zeta_approximation_is_close() {
        // For n below the cutoff the zeta is exact; compare a large-n
        // approximation against a directly computed larger prefix.
        let z = Zipfian::new(1_000_000);
        let mut exact = 0.0;
        for i in 1..=1_000_000u64 {
            exact += 1.0 / (i as f64).powf(0.99);
        }
        assert!((z.zetan - exact).abs() / exact < 0.01, "{} vs {exact}", z.zetan);
    }

    #[test]
    fn uniform_covers_space() {
        let c = KeyChooser::Uniform;
        let mut rng = seeded_rng(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(c.next(&mut rng, 100, 100));
        }
        assert_eq!(seen.len(), 100, "uniform must reach every key");
    }

    #[test]
    fn latest_prefers_recent() {
        let c = KeyChooser::by_name("latest", 10_000);
        let mut rng = seeded_rng(9);
        let cursor = 10_000u64;
        let mut recent = 0;
        for _ in 0..10_000 {
            let k = c.next(&mut rng, cursor, cursor);
            if k >= cursor - 100 {
                recent += 1;
            }
        }
        assert!(
            recent > 5_000,
            "latest distribution must concentrate on newest keys: {recent}/10000"
        );
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let c = KeyChooser::by_name("zipfian", 1000);
        let mut rng = seeded_rng(3);
        let mut hot = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *hot.entry(c.next(&mut rng, 1000, 1000)).or_insert(0u32) += 1;
        }
        let (&hottest, &count) = hot.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(count > 1000, "a hot key must exist");
        // Scrambling: the hottest key should not be index 0.
        let _ = hottest;
        assert!(hot.len() > 100, "many distinct keys touched");
    }

    #[test]
    fn keys_and_values_are_deterministic() {
        assert_eq!(format_key(7), b"user000000000007".to_vec());
        assert_eq!(make_value(1, 100), make_value(1, 100));
        assert_ne!(make_value(1, 100), make_value(2, 100));
        assert_eq!(make_value(9, 37).len(), 37);
    }

    #[test]
    #[should_panic(expected = "unknown distribution")]
    fn unknown_name_panics() {
        KeyChooser::by_name("pareto", 10);
    }
}
