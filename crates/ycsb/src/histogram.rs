//! Latency recording and summary statistics.

/// Collects per-operation latencies (virtual nanoseconds) and summarizes
/// them.
#[derive(Debug, Default, Clone)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples.push(ns);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        sum as f64 / self.samples.len() as f64 / 1_000.0
    }

    fn sorted_samples(&mut self) -> &[u64] {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        &self.samples
    }

    /// The `p`-th percentile (0.0–100.0) in microseconds.
    pub fn percentile_us(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let samples = self.sorted_samples();
        let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[rank.min(samples.len() - 1)] as f64 / 1_000.0
    }

    /// Maximum sample in microseconds.
    pub fn max_us(&self) -> f64 {
        self.samples.iter().max().copied().unwrap_or(0) as f64 / 1_000.0
    }

    /// Summarizes into a compact struct.
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.count() as u64,
            mean_us: self.mean_us(),
            p50_us: self.percentile_us(50.0),
            p95_us: self.percentile_us(95.0),
            p99_us: self.percentile_us(99.0),
            p999_us: self.percentile_us(99.9),
            max_us: self.max_us(),
        }
    }
}

/// Summary statistics of a latency distribution (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[allow(missing_docs)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub max_us: f64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}µs p50={:.1}µs p95={:.1}µs p99={:.1}µs p999={:.1}µs max={:.1}µs",
            self.count,
            self.mean_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.p999_us,
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.percentile_us(99.0), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn mean_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 1_000); // 1..100 µs
        }
        assert!((h.mean_us() - 50.5).abs() < 1e-9);
        assert!((h.percentile_us(50.0) - 50.0).abs() <= 1.0);
        assert!((h.percentile_us(99.0) - 99.0).abs() <= 1.0);
        assert_eq!(h.max_us(), 100.0);
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = LatencyHistogram::new();
        h.record_ns(1_000);
        h.record_ns(3_000);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert!((s.mean_us - 2.0).abs() < 1e-9);
        assert!(format!("{s}").contains("mean=2.0"));
    }

    #[test]
    fn recording_after_sort_still_works() {
        let mut h = LatencyHistogram::new();
        h.record_ns(5_000);
        let _ = h.percentile_us(50.0);
        h.record_ns(1_000);
        assert!((h.percentile_us(0.0) - 1.0).abs() < 1e-9);
    }
}
