//! Tabular output for the benchmark harness: one table per paper figure,
//! printed as aligned text and as markdown for EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Convenience: a row of (label, f64 series) formatted to 1 decimal.
    pub fn row_f64(&mut self, label: impl ToString, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.1}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: Vec<String> =
            self.headers.iter().zip(&w).map(|(h, w)| format!("{h:>w$}")).collect();
        let _ = writeln!(out, "{}", line.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row.iter().zip(&w).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Prints the text rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new("Fig X", &["size", "latency"]);
        t.row(vec!["8".into(), "12.5".into()]);
        t.row(vec!["2048".into(), "7.1".into()]);
        let s = t.to_text();
        assert!(s.contains("Fig X"));
        assert!(s.contains("2048"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Fig Y", &["a", "b"]);
        t.row_f64("x", &[1.25]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| x | 1.2 |") || md.contains("| x | 1.3 |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }
}
