//! Multi-client run phase on virtual time.
//!
//! The single-threaded [`crate::runner::run_phase`] measures per-operation
//! latency; it cannot show how throughput scales with client threads,
//! because the virtual clock counts *total work* regardless of who did it.
//! This module adds the missing dimension with a deterministic
//! discrete-event scheduler:
//!
//! * each of `threads` virtual clients keeps its own timeline `t_i`;
//! * operations run one at a time (so the store's real code paths execute
//!   unchanged), and the harness measures each op's total virtual cost and
//!   the portion charged inside store critical sections
//!   ([`sgx_sim::SerialClass`]);
//! * the scheduler lets the parallel portions of different clients overlap
//!   while serial portions of the same class exclude each other — the
//!   virtual-time analogue of N threads contending on the store's locks.
//!
//! With a store that holds one global mutex across a whole read, every
//! operation is 100 % serial and throughput is flat in `threads`. With
//! snapshot-isolated reads, only the brief write-lock acquisition
//! serializes and read throughput scales near-linearly. Determinism is
//! preserved: same seed, same schedule, same numbers — on any machine,
//! with any number of physical cores.

use std::sync::Arc;

use rand::Rng;
use sgx_sim::{Platform, SERIAL_CLASSES};

use crate::generator::{format_key, make_value, seeded_rng, KeyChooser};
use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::workload::{Op, Workload};
use crate::KvDriver;

/// Outcome of a multi-client run phase (virtual-time throughput model).
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Workload name.
    pub workload: String,
    /// Number of virtual client threads.
    pub threads: usize,
    /// Operations executed across all clients.
    pub ops: u64,
    /// Simulated wall time of the phase in microseconds: the latest client
    /// finish time (serial sections excluded each other, parallel work
    /// overlapped).
    pub elapsed_us: f64,
    /// Throughput in thousands of operations per simulated second.
    pub kops_per_sec: f64,
    /// Per-operation latency including queueing delay behind serial
    /// sections of other clients.
    pub overall: LatencySummary,
    /// Fraction of reads that found their key.
    pub read_hit_rate: f64,
    /// Fraction of all charged virtual time spent in serial sections —
    /// the Amdahl ceiling of the run.
    pub serial_fraction: f64,
}

/// One virtual client of a concurrent phase: its RNG, key chooser,
/// private insert range, timeline and progress — plus the workload-op
/// semantics, shared by the single-machine and sharded runners so both
/// measure exactly the same YCSB mixes.
pub(crate) struct Client {
    rng: rand::rngs::StdRng,
    chooser: KeyChooser,
    /// This client's private insert keyspace cursor (clients insert into
    /// disjoint ranges so the schedule is independent of interleaving).
    insert_cursor: u64,
    /// Virtual timeline: when this client becomes free.
    pub(crate) t_ns: u64,
    pub(crate) ops_done: u64,
}

/// What one executed op was, hit-rate-wise.
pub(crate) struct OpOutcome {
    /// The op counted toward the read-hit-rate denominator.
    pub(crate) read: bool,
    /// The (counted) read found its key.
    pub(crate) hit: bool,
}

impl Client {
    /// Builds the deterministic client fleet: per-client seeds derived
    /// from `seed`, disjoint insert ranges of `per_client` keys above
    /// the loaded keyspace.
    pub(crate) fn fleet(
        threads: usize,
        seed: u64,
        workload: &Workload,
        record_count: u64,
        per_client: u64,
    ) -> Vec<Client> {
        (0..threads)
            .map(|tid| Client {
                rng: seeded_rng(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid as u64 + 1))),
                chooser: KeyChooser::by_name(&workload.distribution, record_count.max(1)),
                insert_cursor: record_count + tid as u64 * per_client,
                t_ns: 0,
                ops_done: 0,
            })
            .collect()
    }

    /// Draws the next workload op and executes it against `driver`.
    pub(crate) fn execute_op(
        &mut self,
        driver: &dyn KvDriver,
        workload: &Workload,
        record_count: u64,
    ) -> OpOutcome {
        match workload.next_op(&mut self.rng) {
            Op::Read => {
                let k = self.chooser.next(&mut self.rng, record_count, record_count);
                OpOutcome { read: true, hit: driver.get(&format_key(k)) }
            }
            Op::Update => {
                let k = self.chooser.next(&mut self.rng, record_count, record_count);
                let len = workload.draw_value_len(&mut self.rng);
                driver.put(&format_key(k), &make_value(k, len));
                OpOutcome { read: false, hit: false }
            }
            Op::Insert => {
                let k = self.insert_cursor;
                self.insert_cursor += 1;
                let len = workload.draw_value_len(&mut self.rng);
                driver.put(&format_key(k), &make_value(k, len));
                OpOutcome { read: false, hit: false }
            }
            Op::Scan => {
                let k = self.chooser.next(&mut self.rng, record_count, record_count);
                let len = self.rng.gen_range(1..=workload.max_scan_len as u64);
                let to = (k + len).min(record_count.saturating_sub(1));
                driver.scan(&format_key(k), &format_key(to));
                OpOutcome { read: false, hit: false }
            }
            Op::ReadModifyWrite => {
                let k = self.chooser.next(&mut self.rng, record_count, record_count);
                let key = format_key(k);
                let hit = driver.get(&key);
                let len = workload.draw_value_len(&mut self.rng);
                driver.put(&key, &make_value(k, len));
                OpOutcome { read: true, hit }
            }
        }
    }
}

/// Per-class "lock free at" horizons shared by the concurrent phases:
/// serial time of one class must not overlap across clients.
struct SerialScheduler {
    lock_free_at: [u64; SERIAL_CLASSES],
}

impl SerialScheduler {
    fn new() -> Self {
        SerialScheduler { lock_free_at: [0u64; SERIAL_CLASSES] }
    }

    /// Schedules one operation of total virtual cost `total` with per-class
    /// serial deltas `deltas`, starting no earlier than `start`; returns
    /// the finish time.
    ///
    /// The serial span comes first (lock acquisition precedes the protected
    /// work), then the overlapping remainder. Sections of different classes
    /// nest in the store (a flush's write-lock windows sit inside its
    /// maintenance section), so the same nanoseconds may be charged to
    /// several classes: the op's serial *span* is the max per-class delta,
    /// while every involved class's horizon advances by its own delta.
    fn schedule(&mut self, start: u64, total: u64, deltas: &[u64; SERIAL_CLASSES]) -> u64 {
        let span = deltas.iter().copied().max().unwrap_or(0);
        let mut begin = start;
        for (d, horizon) in deltas.iter().zip(self.lock_free_at.iter()) {
            if *d > 0 {
                begin = begin.max(*horizon);
            }
        }
        for (d, horizon) in deltas.iter().zip(self.lock_free_at.iter_mut()) {
            if *d > 0 {
                *horizon = begin + d;
            }
        }
        begin + span + (total - span)
    }
}

/// Per-class serial deltas between two [`Platform::serial_snapshot`]s,
/// clamped to the op's total cost.
fn serial_deltas(
    s0: &[u64; SERIAL_CLASSES],
    s1: &[u64; SERIAL_CLASSES],
    total: u64,
) -> [u64; SERIAL_CLASSES] {
    std::array::from_fn(|k| (s1[k] - s0[k]).min(total))
}

/// Runs `total_ops` operations of `workload` spread over `threads` virtual
/// clients, returning virtual-time throughput and latency.
///
/// Operations execute against `driver` one at a time (the driver needs no
/// extra synchronization beyond its own), but their virtual costs are
/// scheduled as `threads` concurrent timelines: time charged inside
/// [`sgx_sim::SerialClass`] sections is serialized per class, the rest
/// overlaps. `record_count` must match the load phase; `seed` makes the
/// run reproducible.
pub fn run_phase_concurrent(
    driver: &dyn KvDriver,
    platform: &Arc<Platform>,
    workload: &Workload,
    record_count: u64,
    total_ops: u64,
    seed: u64,
    threads: usize,
) -> ConcurrentReport {
    run_phase_concurrent_with_telemetry(
        driver,
        platform,
        workload,
        record_count,
        total_ops,
        seed,
        threads,
        &telemetry::Telemetry::default(),
    )
}

/// [`run_phase_concurrent`] that also records every operation's
/// queueing-inclusive latency into the registry's `ycsb.*` series (see
/// [`crate::runner::OpRecorder`]); read-modify-writes count read-side
/// here, matching [`ConcurrentReport::read_hit_rate`]'s denominator.
#[allow(clippy::too_many_arguments)]
pub fn run_phase_concurrent_with_telemetry(
    driver: &dyn KvDriver,
    platform: &Arc<Platform>,
    workload: &Workload,
    record_count: u64,
    total_ops: u64,
    seed: u64,
    threads: usize,
    telemetry: &telemetry::Telemetry,
) -> ConcurrentReport {
    let recorder = crate::runner::OpRecorder::new(telemetry);
    let threads = threads.max(1);
    let per_client = total_ops / threads as u64;
    let total_ops = per_client * threads as u64;
    let mut clients = Client::fleet(threads, seed, workload, record_count, per_client);

    let mut scheduler = SerialScheduler::new();
    let mut overall = LatencyHistogram::new();
    let mut read_hits = 0u64;
    let mut read_total = 0u64;
    let mut charged_total = 0u64;
    let mut charged_serial = 0u64;

    for _ in 0..total_ops {
        // Next client in virtual time (ties broken by index: deterministic).
        let i = (0..clients.len())
            .filter(|&i| clients[i].ops_done < per_client)
            .min_by_key(|&i| (clients[i].t_ns, i))
            .expect("a client with work left");
        let c = &mut clients[i];
        let c0 = platform.clock().now_ns();
        let s0 = platform.serial_snapshot();
        let outcome = c.execute_op(driver, workload, record_count);
        read_total += u64::from(outcome.read);
        read_hits += u64::from(outcome.read && outcome.hit);
        let total = platform.clock().now_ns() - c0;
        let s1 = platform.serial_snapshot();

        let start = c.t_ns;
        let deltas = serial_deltas(&s0, &s1, total);
        let finish = scheduler.schedule(start, total, &deltas);
        recorder.record(finish - start, outcome.read);
        overall.record_ns(finish - start);
        charged_total += total;
        charged_serial += deltas.iter().copied().max().unwrap_or(0);
        c.t_ns = finish;
        c.ops_done += 1;
    }

    let elapsed_ns = clients.iter().map(|c| c.t_ns).max().unwrap_or(0).max(1);
    ConcurrentReport {
        workload: workload.name.clone(),
        threads,
        ops: total_ops,
        elapsed_us: elapsed_ns as f64 / 1_000.0,
        kops_per_sec: total_ops as f64 / (elapsed_ns as f64 / 1e9) / 1_000.0,
        overall: overall.summary(),
        read_hit_rate: if read_total == 0 { 1.0 } else { read_hits as f64 / read_total as f64 },
        serial_fraction: if charged_total == 0 {
            0.0
        } else {
            charged_serial as f64 / charged_total as f64
        },
    }
}

/// Configuration of a batched multi-writer phase
/// ([`run_write_batches_concurrent`]).
#[derive(Debug, Clone, Copy)]
pub struct BatchWritePhase {
    /// Size of the loaded keyspace the updates target.
    pub record_count: u64,
    /// Records written across all clients (rounded down to whole batches
    /// per client).
    pub total_records: u64,
    /// Records per [`KvDriver::put_batch`] call; 1 measures the singleton
    /// write path.
    pub batch_size: usize,
    /// Number of virtual writer clients.
    pub threads: usize,
    /// Value size in bytes.
    pub value_len: usize,
    /// Reproducibility seed.
    pub seed: u64,
}

/// Runs a write-only phase where each of `threads` virtual clients issues
/// [`KvDriver::put_batch`] calls of `batch_size` uniformly chosen keys,
/// scheduled on the same virtual-time model as [`run_phase_concurrent`]
/// (serial sections exclude across clients, the rest overlaps).
///
/// Throughput is reported in *records* per second (`ops` counts records,
/// not batches), so sweeps over `batch_size` are directly comparable. The
/// latency histogram records whole-batch latencies.
pub fn run_write_batches_concurrent(
    driver: &dyn KvDriver,
    platform: &Arc<Platform>,
    phase: &BatchWritePhase,
) -> ConcurrentReport {
    let threads = phase.threads.max(1);
    let batch = phase.batch_size.max(1);
    let per_client = (phase.total_records / (batch as u64 * threads as u64)).max(1);
    let total_batches = per_client * threads as u64;
    struct Writer {
        rng: rand::rngs::StdRng,
        chooser: KeyChooser,
        t_ns: u64,
        batches_done: u64,
    }
    let mut writers: Vec<Writer> = (0..threads)
        .map(|tid| Writer {
            rng: seeded_rng(phase.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid as u64 + 1))),
            chooser: KeyChooser::by_name("uniform", phase.record_count.max(1)),
            t_ns: 0,
            batches_done: 0,
        })
        .collect();
    let mut scheduler = SerialScheduler::new();
    let mut overall = LatencyHistogram::new();
    let mut charged_total = 0u64;
    let mut charged_serial = 0u64;
    for _ in 0..total_batches {
        let i = (0..writers.len())
            .filter(|&i| writers[i].batches_done < per_client)
            .min_by_key(|&i| (writers[i].t_ns, i))
            .expect("a writer with work left");
        let w = &mut writers[i];
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..batch)
            .map(|_| {
                let k = w.chooser.next(&mut w.rng, phase.record_count, phase.record_count);
                (format_key(k), make_value(k, phase.value_len))
            })
            .collect();
        let c0 = platform.clock().now_ns();
        let s0 = platform.serial_snapshot();
        driver.put_batch(&items);
        let total = platform.clock().now_ns() - c0;
        let s1 = platform.serial_snapshot();
        let deltas = serial_deltas(&s0, &s1, total);
        let finish = scheduler.schedule(w.t_ns, total, &deltas);
        overall.record_ns(finish - w.t_ns);
        charged_total += total;
        charged_serial += deltas.iter().copied().max().unwrap_or(0);
        w.t_ns = finish;
        w.batches_done += 1;
    }
    let elapsed_ns = writers.iter().map(|w| w.t_ns).max().unwrap_or(0).max(1);
    let total_records = total_batches * batch as u64;
    ConcurrentReport {
        workload: format!("write-b{batch}"),
        threads,
        ops: total_records,
        elapsed_us: elapsed_ns as f64 / 1_000.0,
        kops_per_sec: total_records as f64 / (elapsed_ns as f64 / 1e9) / 1_000.0,
        overall: overall.summary(),
        read_hit_rate: 1.0,
        serial_fraction: if charged_total == 0 {
            0.0
        } else {
            charged_serial as f64 / charged_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sgx_sim::SerialClass;
    use std::collections::BTreeMap;

    /// A driver whose ops cost `cost_ns`, of which `serial_ns` is charged
    /// inside a StoreWrite section.
    struct SplitDriver {
        platform: Arc<Platform>,
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        cost_ns: u64,
        serial_ns: u64,
    }

    impl SplitDriver {
        fn charge(&self) {
            {
                let _s = self.platform.serial_section(SerialClass::StoreWrite);
                self.platform.advance(self.serial_ns);
            }
            self.platform.advance(self.cost_ns - self.serial_ns);
        }
    }

    impl KvDriver for SplitDriver {
        fn put(&self, key: &[u8], value: &[u8]) {
            self.charge();
            self.map.lock().insert(key.to_vec(), value.to_vec());
        }
        fn get(&self, key: &[u8]) -> bool {
            self.charge();
            self.map.lock().contains_key(key)
        }
        fn scan(&self, from: &[u8], to: &[u8]) -> usize {
            self.charge();
            self.map.lock().range(from.to_vec()..=to.to_vec()).count()
        }
    }

    fn driver(cost_ns: u64, serial_ns: u64) -> (SplitDriver, Arc<Platform>) {
        let platform = Platform::with_defaults();
        (
            SplitDriver {
                platform: platform.clone(),
                map: Mutex::new(BTreeMap::new()),
                cost_ns,
                serial_ns,
            },
            platform,
        )
    }

    fn load(d: &SplitDriver, n: u64) {
        for i in 0..n {
            d.map.lock().insert(format_key(i), b"v".to_vec());
        }
    }

    #[test]
    fn fully_serial_ops_do_not_scale() {
        let (d, p) = driver(1_000, 1_000);
        load(&d, 100);
        let r1 = run_phase_concurrent(&d, &p, &Workload::c(), 100, 400, 7, 1);
        let r4 = run_phase_concurrent(&d, &p, &Workload::c(), 100, 400, 7, 4);
        assert!((r1.serial_fraction - 1.0).abs() < 1e-9);
        let speedup = r4.kops_per_sec / r1.kops_per_sec;
        assert!(speedup < 1.1, "serial ops must not scale, got {speedup:.2}x");
    }

    #[test]
    fn mostly_parallel_ops_scale_near_linearly() {
        let (d, p) = driver(10_000, 100);
        load(&d, 100);
        let r1 = run_phase_concurrent(&d, &p, &Workload::c(), 100, 400, 7, 1);
        let r4 = run_phase_concurrent(&d, &p, &Workload::c(), 100, 400, 7, 4);
        let speedup = r4.kops_per_sec / r1.kops_per_sec;
        assert!(speedup > 3.0, "1% serial should give ~4x at 4 threads, got {speedup:.2}x");
        assert!(r4.serial_fraction < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let (d1, p1) = driver(2_000, 500);
        load(&d1, 50);
        let a = run_phase_concurrent(&d1, &p1, &Workload::a(), 50, 300, 99, 4);
        let (d2, p2) = driver(2_000, 500);
        load(&d2, 50);
        let b = run_phase_concurrent(&d2, &p2, &Workload::a(), 50, 300, 99, 4);
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.kops_per_sec, b.kops_per_sec);
    }

    #[test]
    fn hit_rate_counts_reads() {
        let (d, p) = driver(1_000, 0);
        load(&d, 100);
        let r = run_phase_concurrent(&d, &p, &Workload::c(), 100, 200, 3, 2);
        assert!(r.read_hit_rate > 0.999);
        assert_eq!(r.ops, 200);
    }
}
