//! # ycsb
//!
//! A native Rust reimplementation of the YCSB benchmark harness (Cooper et
//! al., SoCC'10) as used in the eLSM paper's evaluation (§6): key choosers
//! (uniform / scrambled-zipfian / latest), the core workloads A–F plus the
//! paper's read-ratio sweeps, the two-phase load/run driver, latency
//! histograms on the simulated platform's virtual clock, and tabular
//! reporting for the figure-regeneration binaries.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod generator;
pub mod histogram;
pub mod report;
pub mod runner;
pub mod sharded;
pub mod workload;

pub use concurrent::{
    run_phase_concurrent, run_phase_concurrent_with_telemetry, run_write_batches_concurrent,
    BatchWritePhase, ConcurrentReport,
};
pub use generator::{format_key, make_value, seeded_rng, KeyChooser, Zipfian};
pub use histogram::{LatencyHistogram, LatencySummary};
pub use report::Table;
pub use runner::{
    load_phase, run_phase, run_phase_with_telemetry, KvDriver, OpRecorder, RunReport,
};
pub use sharded::{run_sharded_concurrent, ShardPhase, ShardedKvDriver};
pub use workload::{Op, ValueSizeDist, Workload};
