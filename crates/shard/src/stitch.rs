//! Order-preserving stitching primitives shared by the authenticated
//! router and the unsecured sharded baseline: a k-way merge of per-shard
//! key-sorted segments and the split/scatter bookkeeping of per-shard
//! batched writes. Pure data movement — all trust decisions (ownership
//! checks, verification) stay with the callers.

/// K-way merges per-shard segments, each already sorted by `key`, into
/// one key-ordered result. Callers guarantee key-disjoint segments (a
/// deterministic partitioner gives every key one owner), so ties cannot
/// occur; if they did, the earlier segment would win.
pub fn merge_by_key<T>(segments: Vec<Vec<T>>, key: impl Fn(&T) -> &[u8]) -> Vec<T> {
    let total: usize = segments.iter().map(Vec::len).sum();
    let mut cursors: Vec<(std::vec::IntoIter<T>, Option<T>)> = segments
        .into_iter()
        .map(|s| {
            let mut it = s.into_iter();
            let head = it.next();
            (it, head)
        })
        .collect();
    let mut out = Vec::with_capacity(total);
    while let Some(next) = cursors
        .iter()
        .enumerate()
        .filter_map(|(i, (_, head))| head.as_ref().map(|r| (i, key(r))))
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
    {
        let (it, head) = &mut cursors[next];
        let record = head.take().expect("selected cursor has a head");
        *head = it.next();
        out.push(record);
    }
    out
}

/// Runs one batch call per non-empty shard group and scatters the
/// returned timestamps back into the caller's item order. `per_shard`
/// holds original item indexes grouped by owning shard (see
/// [`crate::Partitioner::split_indices`]); `run` executes shard
/// `(shard, indexes)` and must return one timestamp per index, in
/// order.
///
/// # Errors
///
/// Propagates the first shard batch error.
pub fn run_sharded_batches<E>(
    per_shard: &[Vec<usize>],
    total: usize,
    mut run: impl FnMut(usize, &[usize]) -> Result<Vec<u64>, E>,
) -> Result<Vec<u64>, E> {
    let mut out = vec![0u64; total];
    for (shard, indexes) in per_shard.iter().enumerate() {
        if indexes.is_empty() {
            continue;
        }
        let timestamps = run(shard, indexes)?;
        debug_assert_eq!(timestamps.len(), indexes.len(), "one timestamp per batched record");
        for (&idx, ts) in indexes.iter().zip(timestamps) {
            out[idx] = ts;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_interleaves_sorted_segments() {
        let merged = merge_by_key(
            vec![
                vec![b"a".to_vec(), b"d".to_vec()],
                vec![b"b".to_vec(), b"e".to_vec()],
                vec![],
                vec![b"c".to_vec()],
            ],
            |k| k.as_slice(),
        );
        assert_eq!(
            merged,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec()]
        );
    }

    #[test]
    fn scatter_restores_caller_order() {
        // Items 0,2 on shard 1; item 1 on shard 0.
        let per_shard = vec![vec![1usize], vec![0usize, 2]];
        let out = run_sharded_batches::<()>(&per_shard, 3, |shard, idxs| {
            Ok(idxs.iter().map(|&i| (shard * 100 + i) as u64).collect())
        })
        .unwrap();
        assert_eq!(out, vec![100, 1, 102]);
    }

    #[test]
    fn scatter_propagates_errors() {
        let per_shard = vec![vec![0usize], vec![1usize]];
        let result =
            run_sharded_batches(
                &per_shard,
                2,
                |shard, _| {
                    if shard == 1 {
                        Err("boom")
                    } else {
                        Ok(vec![0])
                    }
                },
            );
        assert_eq!(result, Err("boom"));
    }
}
