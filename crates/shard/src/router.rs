//! The sharded cluster router and its trusted stitching state.
//!
//! [`ShardedKv`] implements the paper's authenticated interface
//! ([`AuthenticatedKv`]) over N independent eLSM-P2 partitions, each with
//! its own [`Platform`] enclave, trusted state and simulated filesystem —
//! the LSKV-style scale-out deployment. The router itself is split the
//! same way the paper splits a single store:
//!
//! * **trusted**: the deterministic partitioner and the stitching checks
//!   ([`ShardedTrustedState`]) — which shard owns a key, whether an
//!   answer's commitment domain matches that shard, and whether every
//!   record in a cross-shard scan segment belongs to the shard that
//!   returned it;
//! * **untrusted**: the transport between router and shards — which is
//!   exactly what a malicious host controls, so rerouting a query to the
//!   wrong (honest, verifying!) shard or swapping per-shard answers must
//!   be detected by the trusted checks, not assumed away. The detection
//!   is [`VerificationFailure::WrongShard`].

use std::sync::Arc;

use elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options, TrustedState, VerificationFailure};
use elsm::{VerifiedRecord, WRONG_SHARD_UNSHARDED};
use elsm_replica::{ReplicationGroup, ReplicationOptions};
use lsm_store::{GetTrace, ScanTrace, Timestamp};
use sgx_sim::Platform;
use sim_disk::SimFs;

use crate::partition::{PartitionSpec, Partitioner};
use crate::stitch;

/// Configuration of a sharded cluster.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Key→shard assignment.
    pub partition: PartitionSpec,
    /// Per-shard store configuration (`shard_id` is overwritten per
    /// shard by the router).
    pub store: P2Options,
    /// Replicas behind each partition's primary (0 = unreplicated, the
    /// pre-replication deployment). With replicas, each partition is a
    /// full [`ReplicationGroup`]: writes go to the partition's primary,
    /// verified reads are served by its replicas round-robin.
    pub replicas: usize,
}

impl ShardedOptions {
    /// Hash partitioning over `shards` shards with per-shard options.
    pub fn hash(shards: usize, store: P2Options) -> Self {
        ShardedOptions { partition: PartitionSpec::Hash { shards }, store, replicas: 0 }
    }

    /// Range partitioning split at `boundaries` with per-shard options.
    pub fn range(boundaries: Vec<Vec<u8>>, store: P2Options) -> Self {
        ShardedOptions { partition: PartitionSpec::Range { boundaries }, store, replicas: 0 }
    }

    /// Turns every partition into a replication group of `replicas`
    /// replicas behind its primary.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }
}

/// The trusted side of the router: the partitioner plus each shard's
/// enclave state, and the checks that bind answers to shards.
#[derive(Debug)]
pub struct ShardedTrustedState {
    partitioner: Partitioner,
    shards: Vec<Arc<TrustedState>>,
    telemetry: telemetry::Telemetry,
}

impl ShardedTrustedState {
    fn new(
        partitioner: Partitioner,
        shards: Vec<Arc<TrustedState>>,
        telemetry: telemetry::Telemetry,
    ) -> Arc<Self> {
        Arc::new(ShardedTrustedState { partitioner, shards, telemetry })
    }

    /// Records a routing-layer verification failure on the audit stream,
    /// stamped with the shard the trusted router expected.
    fn audit_failure(&self, failure: &VerificationFailure, shard: u32) {
        self.telemetry.audit(
            telemetry::AuditEvent::new(failure.kind(), "router")
                .detail(failure.to_string())
                .shard(shard),
        );
    }

    /// The deterministic partitioner (trusted configuration).
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The shard owning `key`.
    pub fn owner_of(&self, key: &[u8]) -> usize {
        self.partitioner.shard_of(key)
    }

    /// Shard `i`'s enclave state.
    pub fn shard_state(&self, shard: usize) -> &Arc<TrustedState> {
        &self.shards[shard]
    }

    /// Checks that `key` is owned by `shard` — the core anti-swap rule:
    /// a record (or an absence claim) presented by a shard that does not
    /// own its key is a routed-answer forgery however well it verifies
    /// against that shard's own commitments.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::WrongShard`] naming the owner.
    pub fn check_owned(&self, shard: usize, key: &[u8]) -> Result<(), VerificationFailure> {
        let owner = self.owner_of(key);
        if owner != shard {
            let failure = VerificationFailure::WrongShard {
                expected: owner as u32,
                got: shard.try_into().unwrap_or(WRONG_SHARD_UNSHARDED),
            };
            self.audit_failure(&failure, owner as u32);
            return Err(failure);
        }
        Ok(())
    }

    /// Verifies a routed GET answer: the claimed shard must own the key,
    /// and the trace must verify against that shard's commitment
    /// snapshots. This is the entry the adversary suite drives; the
    /// honest router routes by the same partitioner, so the first check
    /// only fires when the host substituted another shard's answer.
    ///
    /// # Errors
    ///
    /// Returns the [`VerificationFailure`] naming the detected attack.
    pub fn verify_routed_get(
        &self,
        key: &[u8],
        claimed_shard: usize,
        trace: &GetTrace,
    ) -> Result<(), VerificationFailure> {
        self.check_owned(claimed_shard, key)?;
        let verdict = self.shards[claimed_shard].verify_get(key, trace);
        if let Err(failure) = &verdict {
            self.audit_failure(failure, claimed_shard as u32);
        }
        verdict
    }
}

/// One shard: an eLSM-P2 primary on its own platform enclave, optionally
/// fronting a replication group (each replica again on its own platform).
#[derive(Debug)]
struct Shard {
    /// The partition's primary store (the group's primary when
    /// replicated).
    store: Arc<ElsmP2>,
    /// The partition's replication group, when `replicas > 0`.
    group: Option<ReplicationGroup>,
}

impl Shard {
    /// The surface operations go through: the group when replicated
    /// (writes fence + ship, reads round-robin to replicas), the bare
    /// store otherwise.
    fn target(&self) -> &dyn AuthenticatedKv {
        match &self.group {
            Some(group) => group,
            None => self.store.as_ref(),
        }
    }
}

/// Registry-backed routing metrics (the `router.*` series).
#[derive(Debug)]
struct RouterMetrics {
    /// Route decisions made (one per keyed operation or batched record).
    routed_ops: telemetry::Counter,
    /// Per-shard scan segments collected for stitching.
    scan_segments: telemetry::Counter,
    /// Records stitched into cross-shard scan results.
    stitched_records: telemetry::Counter,
    /// The trusted stitching phase (ownership checks + merge).
    stitch_span: telemetry::SpanHandle,
}

impl RouterMetrics {
    fn new(telemetry: &telemetry::Telemetry) -> Self {
        RouterMetrics {
            routed_ops: telemetry.counter("router.routed_ops"),
            scan_segments: telemetry.counter("router.scan_segments"),
            stitched_records: telemetry.counter("router.stitched_records"),
            stitch_span: telemetry.span("router.stitch"),
        }
    }
}

/// A sharded authenticated key-value cluster over N eLSM-P2 partitions.
///
/// Writes route to the owning shard (batches split per shard and ride
/// one enclave transition per shard per group); point reads route and
/// verify against the owning shard's commitments; cross-shard scans
/// stitch per-shard verified range results into one totally-ordered
/// result — concatenation for range partitioning, a k-way merge for hash
/// partitioning — with every stitched record checked to belong to the
/// shard that returned it.
///
/// Timestamps are per-shard: each shard's enclave runs its own timestamp
/// manager, so cross-shard timestamp comparisons are meaningless (the
/// verified order within any one key is what the protocol guarantees).
///
/// With [`ShardedOptions::with_replicas`], every partition becomes a
/// [`ReplicationGroup`]: writes go to the partition's primary (which
/// ships them over the authenticated channel before acknowledging) and
/// verified reads round-robin across its replicas — each a full
/// eLSM-P2 store on its own platform, answering from replayed,
/// cross-checked local state. All `WrongShard` checks apply unchanged:
/// replicas inherit the partition's shard binding.
///
/// # Examples
///
/// ```
/// use elsm::AuthenticatedKv;
/// use elsm_shard::{ShardedKv, ShardedOptions};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), elsm::ElsmError> {
/// let cluster =
///     ShardedKv::open(Platform::with_defaults(), ShardedOptions::hash(4, Default::default()))?;
/// cluster.put(b"k", b"v")?;
/// assert_eq!(cluster.get(b"k")?.expect("present").value(), b"v");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedKv {
    router: Arc<Platform>,
    trusted: Arc<ShardedTrustedState>,
    shards: Vec<Shard>,
    metrics: RouterMetrics,
    /// Root (unscoped) registry handle: router-level trace spans open
    /// here so per-shard/replica op spans nest under them.
    telemetry: telemetry::Telemetry,
}

impl ShardedKv {
    /// Opens a fresh cluster: one new platform, filesystem and enclave
    /// per shard, each bound to its shard id. `router` is the trusted
    /// router's own platform; partitioning and stitching costs are
    /// charged there.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open(router: Arc<Platform>, options: ShardedOptions) -> Result<Self, ElsmError> {
        let partitioner = Partitioner::new(options.partition.clone());
        let n = partitioner.shards();
        let mut stores = Vec::with_capacity(n);
        for id in 0..n {
            let platform = Platform::new(router.cost().clone());
            // Each shard reports into the caller's registry under its own
            // scope, keeping per-store series isolated per partition.
            let store_options = P2Options {
                shard_id: Some(id as u32),
                telemetry: options.store.telemetry.scoped(&format!("shard{id}")),
                ..options.store.clone()
            };
            let shard = if options.replicas > 0 {
                let group = ReplicationGroup::open(
                    platform,
                    store_options,
                    ReplicationOptions { replicas: options.replicas, ..Default::default() },
                )?;
                Shard { store: group.primary_store(), group: Some(group) }
            } else {
                Shard { store: Arc::new(ElsmP2::open(platform, store_options)?), group: None }
            };
            stores.push(shard);
        }
        Ok(Self::assemble(router, partitioner, stores, options.store.telemetry.clone()))
    }

    /// Re-opens a cluster on existing per-shard filesystems (one per
    /// shard, in shard order) — the restart path. Each shard's enclave
    /// unseals its state and checks its shard binding, so per-shard state
    /// swapped between directories by the host fails recovery with
    /// [`VerificationFailure::WrongShard`].
    ///
    /// Recovery is **unreplicated**: a replica joining a non-empty
    /// primary needs state transfer (snapshot + catch-up), which this
    /// layer does not implement yet, so a recovered cluster must be
    /// opened with `replicas: 0` — silently downgrading the requested
    /// replication factor would drop freshness and failover guarantees
    /// without a trace.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or failed recovery
    /// verification.
    ///
    /// # Panics
    ///
    /// Panics when `filesystems.len()` does not match the shard count,
    /// or when `options.replicas` is non-zero (see above).
    pub fn open_with(
        router: Arc<Platform>,
        filesystems: Vec<Arc<SimFs>>,
        options: ShardedOptions,
    ) -> Result<Self, ElsmError> {
        let partitioner = Partitioner::new(options.partition.clone());
        assert_eq!(filesystems.len(), partitioner.shards(), "one filesystem per shard");
        assert_eq!(
            options.replicas, 0,
            "cluster recovery is unreplicated (replica bootstrap needs state transfer); \
             re-open with replicas: 0"
        );
        let mut stores = Vec::with_capacity(filesystems.len());
        for (id, fs) in filesystems.into_iter().enumerate() {
            let platform = Platform::new(router.cost().clone());
            let store_options = P2Options {
                shard_id: Some(id as u32),
                telemetry: options.store.telemetry.scoped(&format!("shard{id}")),
                ..options.store.clone()
            };
            stores.push(Shard {
                store: Arc::new(ElsmP2::open_with(platform, fs, store_options, None)?),
                group: None,
            });
        }
        Ok(Self::assemble(router, partitioner, stores, options.store.telemetry.clone()))
    }

    fn assemble(
        router: Arc<Platform>,
        partitioner: Partitioner,
        shards: Vec<Shard>,
        telemetry: telemetry::Telemetry,
    ) -> Self {
        telemetry.attach_platform("router", &router);
        let states = shards.iter().map(|s| s.store.trusted().clone()).collect();
        let metrics = RouterMetrics::new(&telemetry);
        ShardedKv {
            router,
            trusted: ShardedTrustedState::new(partitioner, states, telemetry.clone()),
            shards,
            metrics,
            telemetry,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The trusted router state (partitioner + per-shard enclave states).
    pub fn trusted(&self) -> &Arc<ShardedTrustedState> {
        &self.trusted
    }

    /// The router's platform.
    pub fn router_platform(&self) -> &Arc<Platform> {
        &self.router
    }

    /// Shard `i`'s store (exposed for tests, benchmarks and statistics).
    pub fn shard(&self, i: usize) -> &ElsmP2 {
        &self.shards[i].store
    }

    /// Shard `i`'s platform.
    pub fn shard_platform(&self, i: usize) -> &Arc<Platform> {
        self.shards[i].store.platform()
    }

    /// The shard owning `key` (deterministic, trusted).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.trusted.owner_of(key)
    }

    /// Flushes every shard's memtable (shard-parallel maintenance in the
    /// real deployment; sequential here, each on its own virtual clock).
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn flush(&self) -> Result<(), ElsmError> {
        for shard in &self.shards {
            match &shard.group {
                Some(group) => group.flush()?,
                None => shard.store.db().flush()?,
            }
        }
        Ok(())
    }

    /// Shard `i`'s replication group, when the cluster was opened with
    /// replicas.
    pub fn replication_group(&self, i: usize) -> Option<&ReplicationGroup> {
        self.shards[i].group.as_ref()
    }

    /// Seals every shard's enclave state — the clean-shutdown path that
    /// makes restart verification (and shard-binding checks) possible.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn close(&self) -> Result<(), ElsmError> {
        for shard in &self.shards {
            match &shard.group {
                Some(group) => group.close()?,
                None => shard.store.close()?,
            }
        }
        Ok(())
    }

    /// Charges the trusted router's key-routing work (the partitioner
    /// hash for hash partitioning; range lookup is a few comparisons and
    /// is not charged).
    fn charge_route(&self, key: &[u8]) {
        self.metrics.routed_ops.inc();
        if !self.trusted.partitioner().is_range() {
            self.router.charge_hash(key.len());
        }
    }

    /// Verifies a routed SCAN answer segment claimed to come from
    /// `claimed_shard`: every record in the trace's merged output must be
    /// owned by that shard, and the trace must verify against that
    /// shard's commitments and digest trees. Adversary-suite entry point.
    ///
    /// # Errors
    ///
    /// Returns the [`VerificationFailure`] naming the detected attack.
    pub fn verify_routed_scan(
        &self,
        from: &[u8],
        to: &[u8],
        claimed_shard: usize,
        trace: &ScanTrace,
    ) -> Result<(), VerificationFailure> {
        for record in &trace.merged {
            self.trusted.check_owned(claimed_shard, &record.key)?;
        }
        self.shards[claimed_shard].store.verify_scan_trace(from, to, trace)
    }

    /// Stitches per-shard verified scan segments into one totally-ordered
    /// result, checking per-record shard ownership. Segments arrive in
    /// shard order; for range partitioning they are key-disjoint and
    /// adjacent (concatenation), for hash partitioning they interleave
    /// (k-way merge). Stitching runs in the trusted router; its copy cost
    /// is charged to the router platform.
    fn stitch(
        &self,
        segments: Vec<(usize, Vec<VerifiedRecord>)>,
    ) -> Result<Vec<VerifiedRecord>, ElsmError> {
        // Stitch-back is its own child span so a scan's critical path can
        // distinguish shard time from router merge time.
        let _trace = self.telemetry.trace_op("router.stitch", "stitch");
        let _span = self.metrics.stitch_span.start();
        self.metrics.scan_segments.add(segments.len() as u64);
        let total: usize = segments.iter().map(|(_, s)| s.len()).sum();
        self.metrics.stitched_records.add(total as u64);
        let mut bytes = 0usize;
        for (shard, segment) in &segments {
            for record in segment {
                self.trusted.check_owned(*shard, record.key()).map_err(ElsmError::Verification)?;
                self.charge_route(record.key());
                bytes += record.key().len() + record.value().len();
            }
        }
        self.router.dram_access(bytes);
        if self.trusted.partitioner().is_range() {
            // Adjacent owned ranges: concatenation is already ordered.
            let mut out = Vec::with_capacity(total);
            for (_, segment) in segments {
                out.extend(segment);
            }
            debug_assert!(out.windows(2).all(|w| w[0].key() < w[1].key()));
            return Ok(out);
        }
        // Hash partitioning: k-way merge by key. Ownership checking above
        // guarantees key-disjoint segments (each key has one owner).
        Ok(stitch::merge_by_key(segments.into_iter().map(|(_, s)| s).collect(), |r| r.key()))
    }
}

impl AuthenticatedKv for ShardedKv {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError> {
        // The router opens the request's *root* span; the owning shard's
        // own entry-point span (and, under replication, the replica read
        // path) nests beneath it on this thread.
        let _trace = self.telemetry.trace_op("router.op.put", "put");
        self.charge_route(key);
        self.shards[self.shard_of(key)].target().put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError> {
        let _trace = self.telemetry.trace_op("router.op.delete", "delete");
        self.charge_route(key);
        self.shards[self.shard_of(key)].target().delete(key)
    }

    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        let _trace = self.telemetry.trace_op("router.op.get", "get");
        self.charge_route(key);
        self.shards[self.shard_of(key)].target().get(key)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        // One root span for the fan-out; each shard's verified scan runs
        // as its own child span (opened at the shard store's entry
        // point), and the stitch-back is a further child below.
        let _trace = self.telemetry.trace_op("router.op.scan", "scan");
        let partitioner = self.trusted.partitioner();
        let mut segments = Vec::new();
        for (id, shard) in self.shards.iter().enumerate() {
            if partitioner.is_range() && !partitioner.range_overlaps(id, from, to) {
                continue;
            }
            // Each shard proves completeness of its own slice against its
            // own epoch snapshot; the lower bound is clamped into the
            // shard's owned range (nothing below it can honestly exist
            // there).
            let shard_from = partitioner.clamp_from(id, from);
            segments.push((id, shard.target().scan(shard_from, to)?));
        }
        self.stitch(segments)
    }

    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        let _trace = self.telemetry.trace_op("router.op.put_batch", "put_batch");
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // Split the batch per owning shard, preserving in-shard order;
        // each shard's sub-batch rides one enclave transition and one WAL
        // frame (`ElsmP2::put_batch`), then timestamps scatter back into
        // the caller's order.
        for (key, _) in items {
            self.charge_route(key);
        }
        let per_shard = self.trusted.partitioner().split_indices(items.iter().map(|(key, _)| *key));
        stitch::run_sharded_batches(&per_shard, items.len(), |shard, indexes| {
            let sub: Vec<(&[u8], &[u8])> = indexes.iter().map(|&i| items[i]).collect();
            self.shards[shard].target().put_batch(&sub)
        })
    }

    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        let _trace = self.telemetry.trace_op("router.op.delete_batch", "delete_batch");
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        for key in keys {
            self.charge_route(key);
        }
        let per_shard = self.trusted.partitioner().split_indices(keys.iter().copied());
        stitch::run_sharded_batches(&per_shard, keys.len(), |shard, indexes| {
            let sub: Vec<&[u8]> = indexes.iter().map(|&i| keys[i]).collect();
            self.shards[shard].target().delete_batch(&sub)
        })
    }
}
