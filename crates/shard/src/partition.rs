//! Deterministic key→shard partitioners.
//!
//! Both partitioning schemes are pure functions of the key and the
//! cluster configuration, evaluated inside the trusted router — the host
//! has no say in which shard owns a key, which is what makes cross-shard
//! answer-swapping detectable ([`elsm::VerificationFailure::WrongShard`]).

/// How keys are assigned to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// FNV-1a hash of the key modulo the shard count: uniform load
    /// spreading; cross-shard scans touch every shard and k-way merge.
    Hash {
        /// Number of shards.
        shards: usize,
    },
    /// Contiguous key ranges split at explicit boundaries: shard `i` owns
    /// `[boundaries[i-1], boundaries[i])` (the first shard is unbounded
    /// below, the last unbounded above); cross-shard scans touch only the
    /// overlapping shards and concatenate.
    Range {
        /// Strictly increasing split points; `len + 1` shards.
        boundaries: Vec<Vec<u8>>,
    },
}

/// A validated, deterministic key→shard map.
#[derive(Debug, Clone)]
pub struct Partitioner {
    spec: PartitionSpec,
}

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Partitioner {
    /// Builds a partitioner from a spec.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count or non-strictly-increasing range
    /// boundaries — both configuration bugs, not runtime conditions.
    pub fn new(spec: PartitionSpec) -> Self {
        match &spec {
            PartitionSpec::Hash { shards } => {
                assert!(*shards >= 1, "a cluster needs at least one shard");
            }
            PartitionSpec::Range { boundaries } => {
                assert!(
                    boundaries.windows(2).all(|w| w[0] < w[1]),
                    "range boundaries must be strictly increasing"
                );
            }
        }
        Partitioner { spec }
    }

    /// Hash partitioning over `shards` shards.
    pub fn hash(shards: usize) -> Self {
        Self::new(PartitionSpec::Hash { shards })
    }

    /// Range partitioning split at `boundaries` (`boundaries.len() + 1`
    /// shards).
    pub fn range(boundaries: Vec<Vec<u8>>) -> Self {
        Self::new(PartitionSpec::Range { boundaries })
    }

    /// The spec this partitioner was built from.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        match &self.spec {
            PartitionSpec::Hash { shards } => *shards,
            PartitionSpec::Range { boundaries } => boundaries.len() + 1,
        }
    }

    /// Whether this is range partitioning (adjacent shards own adjacent
    /// key ranges, so cross-shard scans concatenate instead of merging).
    pub fn is_range(&self) -> bool {
        matches!(self.spec, PartitionSpec::Range { .. })
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        match &self.spec {
            PartitionSpec::Hash { shards } => (fnv1a(key) % *shards as u64) as usize,
            PartitionSpec::Range { boundaries } => {
                boundaries.partition_point(|b| b.as_slice() <= key)
            }
        }
    }

    /// Range-partitioning only: whether shard `i`'s owned range
    /// `[lo, hi)` intersects the inclusive query range `[from, to]`.
    pub fn range_overlaps(&self, shard: usize, from: &[u8], to: &[u8]) -> bool {
        let PartitionSpec::Range { boundaries } = &self.spec else {
            return true; // hash partitioning: every shard may hold range keys
        };
        let above_lo = shard == 0 || boundaries[shard - 1].as_slice() <= to;
        let below_hi = shard >= boundaries.len() || from < boundaries[shard].as_slice();
        above_lo && below_hi
    }

    /// Groups item indexes by owning shard, preserving in-shard order —
    /// the split half of per-shard batched writes (the scatter half is
    /// [`crate::stitch::run_sharded_batches`]).
    pub fn split_indices<'a>(&self, keys: impl IntoIterator<Item = &'a [u8]>) -> Vec<Vec<usize>> {
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards()];
        for (idx, key) in keys.into_iter().enumerate() {
            per_shard[self.shard_of(key)].push(idx);
        }
        per_shard
    }

    /// Range-partitioning only: the query's lower bound clamped into
    /// shard `i`'s owned range (no upper clamp is needed — a shard stores
    /// nothing at or above its upper boundary, so scanning to the query's
    /// `to` is already exact).
    pub fn clamp_from<'a>(&'a self, shard: usize, from: &'a [u8]) -> &'a [u8] {
        let PartitionSpec::Range { boundaries } = &self.spec else {
            return from;
        };
        match shard.checked_sub(1).and_then(|i| boundaries.get(i)) {
            Some(lo) if lo.as_slice() > from => lo,
            _ => from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let p = Partitioner::hash(4);
        assert_eq!(p.shards(), 4);
        for i in 0..500u32 {
            let key = format!("user{i:012}");
            let s = p.shard_of(key.as_bytes());
            assert!(s < 4);
            assert_eq!(s, p.shard_of(key.as_bytes()), "same key, same shard");
        }
    }

    #[test]
    fn hash_spreads_keys() {
        let p = Partitioner::hash(4);
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[p.shard_of(format!("user{i:012}").as_bytes())] += 1;
        }
        for c in counts {
            assert!((600..=1400).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn range_assigns_contiguous_spans() {
        let p = Partitioner::range(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.shard_of(b"apple"), 0);
        assert_eq!(p.shard_of(b"g"), 1, "boundary key belongs to the upper shard");
        assert_eq!(p.shard_of(b"mango"), 1);
        assert_eq!(p.shard_of(b"p"), 2);
        assert_eq!(p.shard_of(b"zebra"), 2);
    }

    #[test]
    fn range_overlap_and_clamp() {
        let p = Partitioner::range(vec![b"g".to_vec(), b"p".to_vec()]);
        assert!(p.range_overlaps(0, b"a", b"c"));
        assert!(!p.range_overlaps(1, b"a", b"c"));
        assert!(p.range_overlaps(1, b"a", b"g"), "inclusive `to` reaches the boundary key");
        assert!(p.range_overlaps(2, b"a", b"z"));
        assert!(!p.range_overlaps(0, b"g", b"z"), "shard 0 ends strictly below g");
        assert_eq!(p.clamp_from(1, b"a"), b"g");
        assert_eq!(p.clamp_from(1, b"k"), b"k");
        assert_eq!(p.clamp_from(0, b"a"), b"a");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_rejected() {
        Partitioner::range(vec![b"p".to_vec(), b"g".to_vec()]);
    }
}
