//! # elsm-shard
//!
//! Horizontal scale-out for the eLSM authenticated key-value store: a
//! sharded cluster of independent eLSM-P2 partitions behind a verified
//! router — the deployment shape TEE-backed datastores use to scale past
//! one enclave (LSKV-style partitioning; the TEE-KVS survey's
//! multi-enclave axis).
//!
//! * [`Partitioner`] — deterministic hash or range key→shard assignment,
//!   evaluated in trusted code;
//! * [`ShardedKv`] — implements [`elsm::AuthenticatedKv`] over N shards:
//!   routed verified point ops, per-shard-split batched writes (one
//!   enclave transition per shard per group), and cross-shard scans that
//!   stitch per-shard verified range results into one totally-ordered
//!   answer;
//! * [`ShardedTrustedState`] — the trusted stitching checks. Every
//!   shard's enclave binds its shard id into its commitment domain, so a
//!   malicious host that reroutes queries, swaps answers between shards,
//!   or swaps per-shard persistent state across restarts is detected
//!   ([`elsm::VerificationFailure::WrongShard`]).
//!
//! # Examples
//!
//! ```
//! use elsm::AuthenticatedKv;
//! use elsm_shard::{ShardedKv, ShardedOptions};
//! use sgx_sim::Platform;
//!
//! # fn main() -> Result<(), elsm::ElsmError> {
//! let cluster =
//!     ShardedKv::open(Platform::with_defaults(), ShardedOptions::hash(2, Default::default()))?;
//! cluster.put(b"alpha", b"1")?;
//! cluster.put(b"omega", b"2")?;
//! let all = cluster.scan(b"a", b"z")?; // verified, totally ordered
//! assert_eq!(all.len(), 2);
//! assert!(all[0].key() < all[1].key());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod router;
pub mod stitch;

pub use partition::{PartitionSpec, Partitioner};
pub use router::{ShardedKv, ShardedOptions, ShardedTrustedState};
