//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! shim implements the subset of the `bytes::Bytes` API that the eLSM
//! workspace consumes: cheap clones via reference counting, zero-copy
//! `slice`, and the usual conversions/comparisons. The in-memory layout
//! (an `Arc<[u8]>` plus an offset/length window) matches the semantics —
//! though not the micro-optimisations — of the real crate.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones share the same backing allocation; [`Bytes::slice`] returns a
/// zero-copy view into it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // A shim cannot borrow 'static storage into an Arc without
        // copying; the copy preserves semantics at a small cost.
        Self::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data), start: 0, len: data.len() }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy sub-view sharing this allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of range {}", self.len);
        Self { data: Arc::clone(&self.data), start: self.start + start, len: end - start }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// Whether two views share the same backing allocation (true for
    /// clones and sub-slices of one another). Diagnostic helper for
    /// asserting zero-copy behaviour in hot paths.
    pub fn shares_storage(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self { data: Arc::from(v.into_boxed_slice()), start: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Self::copy_from_slice(&v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn equality_and_ordering() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert!(a < Bytes::from_static(b"abd"));
        assert_eq!(a, b"abc"[..]);
    }
}
