//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace consumes:
//! the [`Rng`] and [`SeedableRng`] traits, `rngs::StdRng` (backed by
//! xoshiro256** seeded through splitmix64 — statistically strong and
//! fully deterministic per seed), `gen`, `gen_range`, `gen_bool`, and
//! `fill_bytes`. Not cryptographically secure; the workspace only uses
//! it for workload generation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that an RNG can produce uniformly at random via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value from `rng`.
    fn random_from(rng: &mut impl RngCore) -> Self;
}

/// The minimal core RNG interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// User-facing random-generation methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard RNG: xoshiro256** with splitmix64 seed expansion.
    ///
    /// Deterministic for a given seed, which is what the workload
    /// generators rely on for reproducible figures.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn random_from(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Draws uniformly from `[0, bound)` by widening multiplication
/// (Lemire's method), avoiding modulo bias.
fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_rough_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
