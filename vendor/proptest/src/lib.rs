//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest 1.x API that this workspace's
//! property tests consume: the [`proptest!`] macro (including the
//! `#![proptest_config(..)]` header), integer-range and tuple
//! strategies, `prop::collection::{vec, btree_map}`, `any::<T>()`, and
//! the `prop_assert*` macros. Inputs are drawn from a deterministic
//! splitmix64 stream so failures reproduce run-to-run; there is no
//! shrinking — a failing case panics with the seed and case index.

#![warn(missing_docs)]

/// Deterministic random source used to generate test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Returns the next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly below `bound` (which must be > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply rejection (Lemire); unbiased.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support: types with a canonical "anything" strategy.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types that can be generated unconstrained.
    pub trait Arbitrary {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy producing unconstrained values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with size drawn from
    /// a range (best-effort: key collisions may yield smaller maps).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts so narrow key spaces cannot spin forever.
            for _ in 0..target.saturating_mul(4).max(8) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// `BTreeMap` strategy over `key`/`value` strategies, size in `size`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, panicking with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    // Internal: config expression resolved, expand each property fn.
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Seed differs per property (by name) but is stable
                // across runs so failures reproduce.
                let seed = {
                    let name = stringify!($name);
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in name.bytes() {
                        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::new(seed ^ (u64::from(case).wrapping_mul(0x9e37)));
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    // Entry without a config header.
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in any::<u16>()) {
            prop_assert!((3..9).contains(&n));
            let _ = x;
        }

        /// Collection strategies honour their size windows.
        #[test]
        fn collections_sized(v in prop::collection::vec(any::<u8>(), 2..5),
                             m in prop::collection::btree_map(0u8..50, 0u8..3, 1..6)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(m.len() < 6);
        }
    }
}
