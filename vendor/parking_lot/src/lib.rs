//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s
//! non-poisoning API: `lock()`, `read()` and `write()` return guards
//! directly instead of `Result`s. Poisoned locks are recovered
//! transparently (a panic while holding a lock does not wedge every
//! later acquisition), which matches parking_lot's behaviour of not
//! tracking poison at all.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with a non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with a non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
