//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BatchSize`, `Throughput`) backed by a
//! simple adaptive wall-clock timer: each benchmark is warmed up, then
//! run until ~50 ms of samples accumulate, and the mean per-iteration
//! time is printed. No statistics, plots or comparisons — just enough
//! to keep `cargo bench` meaningful offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(50);

/// Declared throughput of a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Hint for how batched setup output should be sized. The shim runs
/// one setup per iteration regardless, so the variants only exist for
/// API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Prevents the optimizer from eliding a value or the computation that
/// produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures for one benchmark.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up round, untimed.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Runs `routine` over fresh values from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the shim
    /// times adaptively).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        let mean = b.mean_ns();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.1} elem/s", n as f64 / mean * 1e9)
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>12.1} ns/iter{}", self.name, id, mean, rate);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $( $target(&mut $crate::Criterion::default()); )+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.iters > 0);
    }
}
