//! §5.6.2: outsourcing sensitive data — authenticated *and* confidential.
//! Keys are deterministically encrypted (host can still search), values are
//! AEAD-sealed, and order-preserving tags keep range queries working.
//!
//! Run with: `cargo run --example confidential_outsourcing`

use elsm_repro::elsm::{AuthenticatedKv, ConfidentialStore, P2Options};
use elsm_repro::sgx_sim::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::with_defaults();
    let store = ConfidentialStore::open(platform, P2Options::default(), b"tenant-42 master key")?;

    // A Twitter-like outsourced workload (Appendix B): user posts keyed by
    // handle, values are private.
    let posts = [
        ("alice", "meet at dawn"),
        ("bob", "the eagle has landed"),
        ("carol", "lunch?"),
        ("dave", "42"),
        ("erin", "shipping friday"),
    ];
    for (user, post) in posts {
        store.put(user.as_bytes(), post.as_bytes())?;
    }
    store.inner().db().flush()?;

    // Point reads decrypt transparently (after enclave-side verification).
    let rec = store.get(b"bob")?.expect("bob present");
    println!("GET bob -> {:?}", String::from_utf8_lossy(rec.value()));

    // Range queries still work via order-preserving key tags.
    let mid = store.scan(b"bob", b"dave")?;
    println!("SCAN bob..dave -> {} users:", mid.len());
    for r in &mid {
        println!(
            "  {} = {:?}",
            String::from_utf8_lossy(r.key()),
            String::from_utf8_lossy(r.value())
        );
    }

    // What the untrusted host actually sees: no plaintext anywhere.
    let mut leaked = false;
    for name in store.inner().fs().list() {
        let f = store.inner().fs().open(&name)?;
        let bytes = f.peek(0, f.len())?;
        for needle in [b"alice".as_slice(), b"eagle".as_slice(), b"lunch".as_slice()] {
            if bytes.windows(needle.len()).any(|w| w == needle) {
                leaked = true;
            }
        }
    }
    println!("plaintext visible to the host: {leaked}");
    assert!(!leaked, "DE keys + AEAD values must hide everything");
    println!("the host stores only ciphertext, yet serves verified queries ✓");
    Ok(())
}
