//! The §3.3 threat model, live: a malicious host mounts every attack class
//! against the store and the enclave's VRFY algorithms catch each one.
//!
//! Run with: `cargo run --example adversarial_host`

use elsm_repro::elsm::{
    adversary, AuthenticatedKv, ElsmError, ElsmP2, P2Options, VerificationFailure,
};
use elsm_repro::sgx_sim::{MonotonicCounter, Platform};
use elsm_repro::sim_disk::{SimDisk, SimFs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = ElsmP2::open(
        Platform::with_defaults(),
        P2Options { write_buffer_bytes: 8 * 1024, ..P2Options::default() },
    )?;
    for i in 0..500u32 {
        store.put(format!("key{i:04}").as_bytes(), format!("value-{i}").as_bytes())?;
    }
    store.db().flush()?;
    println!("loaded 500 records; launching attacks\n");

    // 1. Forgery: the host rewrites a returned value.
    let mut trace = store.raw_get_trace(b"key0042")?;
    adversary::forge_hit_value(&mut trace, b"forged!!");
    let err = store.verify_get_trace(b"key0042", &trace).unwrap_err();
    println!("forged value        -> DETECTED: {err}");

    // 2. Completeness: the host pretends the key does not exist.
    let mut trace = store.raw_get_trace(b"key0042")?;
    adversary::suppress_hit(&mut trace);
    let err = store.verify_get_trace(b"key0042", &trace).unwrap_err();
    println!("suppressed record   -> DETECTED: {err}");

    // 3. Freshness: the host answers with an older version (⟨Z,6⟩ attack).
    store.put(b"key0042", b"value-new")?;
    store.db().flush()?;
    let stale = store
        .db()
        .level_record_dump(1)?
        .into_iter()
        .filter(|r| &r.key[..] == b"key0042")
        .min_by_key(|r| r.ts)
        .expect("an old version on disk");
    let mut trace = store.raw_get_trace(b"key0042")?;
    adversary::substitute_stale(&mut trace, stale);
    let err = store.verify_get_trace(b"key0042", &trace).unwrap_err();
    println!("stale version       -> DETECTED: {err}");

    // 4. Range censorship: a record vanishes from a scan.
    let mut trace = store.raw_scan_trace(b"key0100", b"key0120")?;
    let level = trace
        .levels
        .iter()
        .find(|l| l.records.iter().any(|r| &r.key[..] == b"key0110"))
        .map(|l| l.level)
        .expect("key0110 somewhere");
    adversary::drop_from_scan(&mut trace, level, b"key0110");
    let err = store.verify_scan_trace(b"key0100", b"key0120", &trace).unwrap_err();
    println!("censored scan       -> DETECTED: {err}");

    // 5. Bit-rot / tampering of on-disk SSTables.
    let sst = store.fs().list().into_iter().find(|n| n.ends_with(".sst")).unwrap();
    store.fs().open(&sst)?.corrupt(100, 0x40);
    let detected = (0..500).map(|i| format!("key{i:04}")).any(|k| store.get(k.as_bytes()).is_err());
    println!("disk corruption     -> DETECTED: {detected}");

    // 6. Rollback across a power cycle (needs a trusted counter).
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let counter = MonotonicCounter::new(platform.clone());
    let options = P2Options {
        rollback: Some(elsm_repro::elsm::RollbackOptions { counter_write_buffer: 1 }),
        ..P2Options::default()
    };
    {
        let s = ElsmP2::open_with(
            platform.clone(),
            fs.clone(),
            options.clone(),
            Some(counter.clone()),
        )?;
        s.put(b"epoch", b"one")?;
        s.close()?;
    }
    let old_world = fs.snapshot();
    {
        let s = ElsmP2::open_with(
            platform.clone(),
            fs.clone(),
            options.clone(),
            Some(counter.clone()),
        )?;
        s.put(b"epoch", b"two")?;
        s.close()?;
    }
    fs.restore(&old_world); // the adversary serves yesterday's disk
    match ElsmP2::open_with(platform, fs, options, Some(counter)) {
        Err(ElsmError::Verification(VerificationFailure::RolledBack)) => {
            println!("rollback attack     -> DETECTED: rollback attack detected");
        }
        other => panic!("rollback should be caught, got {other:?}"),
    }

    println!("\nall six attack classes detected; honest queries still verify:");
    let rec = store.get(b"key0007")?.expect("honest read");
    println!("GET key0007 = {:?} ✓", String::from_utf8_lossy(rec.value()));
    Ok(())
}
