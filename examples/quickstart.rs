//! Quickstart: open an authenticated store, write, read (with verified
//! proofs), scan, delete — the paper's Equation 1 interface end to end.
//!
//! Run with: `cargo run --example quickstart`

use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
use elsm_repro::sgx_sim::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated SGX platform: virtual clock, EPC, cost model.
    let platform = Platform::with_defaults();
    let store = ElsmP2::open(platform.clone(), P2Options::default())?;

    // ts = PUT(k, v)
    let ts = store.put(b"alice", b"owes bob 10")?;
    println!("PUT alice -> ts {ts}");
    store.put(b"bob", b"owes carol 5")?;
    store.put(b"carol", b"settled")?;

    // ⟨k, v, ts⟩ = GET(k): the enclave verifies integrity + freshness.
    let rec = store.get(b"alice")?.expect("alice present");
    println!(
        "GET alice -> {:?} (ts {}, proof {} B, {} levels checked)",
        String::from_utf8_lossy(rec.value()),
        rec.ts(),
        rec.proof_bytes(),
        rec.levels_checked()
    );

    // Verified non-membership: absent keys come with proof too.
    assert!(store.get(b"mallory")?.is_none());
    println!("GET mallory -> verified absent");

    // Force data to disk so proofs are real Merkle paths, then scan.
    store.db().flush()?;
    let all = store.scan(b"a", b"z")?;
    println!("SCAN a..z -> {} records (completeness verified):", all.len());
    for r in &all {
        println!(
            "  {} = {} @ ts {}",
            String::from_utf8_lossy(r.key()),
            String::from_utf8_lossy(r.value()),
            r.ts()
        );
    }

    // Deletes are tombstones; the deletion itself is verifiable.
    store.delete(b"carol")?;
    assert!(store.get(b"carol")?.is_none());
    println!("DELETE carol -> verified gone");

    // Everything above ran on the virtual clock:
    println!(
        "simulated time: {:.1} µs, platform stats: {}",
        platform.clock().now_us(),
        platform.stats()
    );
    Ok(())
}
