//! The paper's §5.7 case study: a trustworthy certificate-transparency log
//! server with browser-side auditors and lightweight domain monitors.
//!
//! Run with: `cargo run --example certificate_transparency`

use elsm_repro::crypto::sha256;
use elsm_repro::ct_log::{cert, AuditVerdict, CtLogServer, DomainMonitor, LogAuditor};
use elsm_repro::sgx_sim::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::with_defaults();
    let server = CtLogServer::open(platform.clone())?;

    // CAs submit a population of certificates (synthetic stand-ins for the
    // Google Pilot log feed the paper downloads).
    let population = cert::synthesize(500, 2026);
    for c in &population {
        server.submit(c)?;
    }
    println!("log holds {} submissions", population.len());

    // Our own domain, with a key we control.
    let our_key = sha256(b"example-org signing key");
    let ours = cert::Certificate {
        hostname: "www.example.org".into(),
        issuer: "Let's Encrypt R3".into(),
        serial: 700_001,
        not_before: 1_750_000_000,
        not_after: 1_757_776_000,
        spki_hash: our_key,
    };
    server.submit(&ours)?;

    // A browser's auditor validates the handshake certificate against the
    // log (inclusion + freshness, verified by the enclave).
    let auditor = LogAuditor::new(&server);
    assert_eq!(auditor.audit(&ours)?, AuditVerdict::Valid);
    println!("auditor: presented certificate is the logged one ✓");

    // The domain owner's monitor polls only its own certificates.
    let mut monitor = DomainMonitor::new("example.org", [our_key]);
    let alerts = monitor.poll(&server)?;
    println!(
        "monitor: {} certificates downloaded (sublinear in log size), {} alerts",
        monitor.certificates_downloaded(),
        alerts.len()
    );
    assert!(alerts.is_empty());

    // A compromised CA mis-issues for our domain — the next poll flags it.
    let evil = cert::Certificate {
        hostname: "login.example.org".into(),
        issuer: "ShadyCA".into(),
        serial: 666,
        not_before: 1_750_000_000,
        not_after: 1_760_000_000,
        spki_hash: sha256(b"attacker key"),
    };
    server.submit(&evil)?;
    let alerts = monitor.poll(&server)?;
    assert_eq!(alerts.len(), 1);
    println!(
        "monitor: MIS-ISSUANCE detected for {} (issuer {:?})",
        alerts[0].certificate.hostname, alerts[0].certificate.issuer
    );

    // Revocation: the auditor then refuses the stale certificate.
    server.revoke(&evil.hostname)?;
    assert_eq!(auditor.audit(&evil)?, AuditVerdict::NotInLog);
    println!("auditor: revoked certificate rejected ✓ (freshness, §5.7)");

    println!("simulated time: {:.1} ms", platform.clock().now_us() / 1000.0);
    Ok(())
}
